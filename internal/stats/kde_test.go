package stats

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

func normalSample(seed uint64, n int, mean, sd float64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(mean, sd)
	}
	return xs
}

func TestKDEIntegratesToOne(t *testing.T) {
	xs := normalSample(1, 5000, 100, 15)
	k := NewKDE(xs, 0, 512)
	if got := k.Integral(); math.Abs(got-1) > 0.01 {
		t.Fatalf("KDE integral = %v, want ≈ 1", got)
	}
}

func TestKDEModeOfNormal(t *testing.T) {
	xs := normalSample(2, 20000, 250, 10)
	mode, ok := HighPowerModeOf(xs)
	if !ok {
		t.Fatal("no mode found")
	}
	if math.Abs(mode.X-250) > 3 {
		t.Fatalf("mode of N(250,10) at %v", mode.X)
	}
	// FWHM of a normal is 2.355σ; KDE smoothing widens it slightly.
	if mode.FWHM < 2.0*10 || mode.FWHM > 3.2*10 {
		t.Fatalf("FWHM = %v, want ≈ 23.5", mode.FWHM)
	}
}

func TestKDEBimodalHighPowerMode(t *testing.T) {
	// Two well-separated modes; the high power mode must be the upper
	// one even though the lower mode has more mass (the point of the
	// paper's metric).
	r := rng.New(3)
	var xs []float64
	for i := 0; i < 6000; i++ {
		xs = append(xs, r.Normal(500, 20))
	}
	for i := 0; i < 3000; i++ {
		xs = append(xs, r.Normal(1500, 30))
	}
	k := NewKDE(xs, 0, 512)
	modes := k.Modes(DefaultModeThreshold)
	if len(modes) != 2 {
		t.Fatalf("expected 2 modes, got %d: %+v", len(modes), modes)
	}
	hpm, ok := k.HighPowerMode(DefaultModeThreshold)
	if !ok {
		t.Fatal("no high power mode")
	}
	if math.Abs(hpm.X-1500) > 10 {
		t.Fatalf("high power mode at %v, want ≈ 1500", hpm.X)
	}
	// Mean is pulled between the modes — exactly why the paper prefers
	// the high power mode.
	mean := Mean(xs)
	if math.Abs(mean-hpm.X) < 200 {
		t.Fatalf("mean %v unexpectedly close to high mode %v", mean, hpm.X)
	}
}

func TestKDETrimodalDetection(t *testing.T) {
	r := rng.New(4)
	var xs []float64
	for _, m := range []float64{300, 800, 1300} {
		for i := 0; i < 4000; i++ {
			xs = append(xs, r.Normal(m, 25))
		}
	}
	k := NewKDE(xs, 0, 1024)
	modes := k.Modes(DefaultModeThreshold)
	if len(modes) != 3 {
		t.Fatalf("expected 3 modes, got %d", len(modes))
	}
	for i, want := range []float64{300, 800, 1300} {
		if math.Abs(modes[i].X-want) > 15 {
			t.Fatalf("mode %d at %v, want ≈ %v", i, modes[i].X, want)
		}
	}
}

func TestKDEThresholdSuppressesMinorModes(t *testing.T) {
	r := rng.New(5)
	var xs []float64
	for i := 0; i < 20000; i++ {
		xs = append(xs, r.Normal(400, 15))
	}
	for i := 0; i < 150; i++ { // sub-1% mass blip
		xs = append(xs, r.Normal(900, 5))
	}
	k := NewKDE(xs, 0, 512)
	modes := k.Modes(0.10)
	if len(modes) != 1 {
		t.Fatalf("minor mode not suppressed at 10%% threshold: %+v", modes)
	}
	loose := k.Modes(0.001)
	if len(loose) < 2 {
		t.Fatalf("minor mode should appear at 0.1%% threshold: %+v", loose)
	}
}

func TestKDEConstantSample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 123
	}
	mode, ok := HighPowerModeOf(xs)
	if !ok {
		t.Fatal("constant sample has no mode")
	}
	if math.Abs(mode.X-123) > 1 {
		t.Fatalf("constant-sample mode at %v", mode.X)
	}
}

func TestKDEEmptySample(t *testing.T) {
	if _, ok := HighPowerModeOf(nil); ok {
		t.Fatal("empty sample should have no mode")
	}
	k := NewKDE(nil, 0, 16)
	if k.Integral() != 0 {
		t.Fatal("empty KDE should integrate to 0")
	}
}

func TestSilvermanBandwidthScales(t *testing.T) {
	narrow := SilvermanBandwidth(normalSample(6, 2000, 0, 1))
	wide := SilvermanBandwidth(normalSample(7, 2000, 0, 10))
	if wide < 5*narrow {
		t.Fatalf("bandwidth should scale with spread: %v vs %v", narrow, wide)
	}
	big := SilvermanBandwidth(normalSample(8, 20000, 0, 1))
	if big >= narrow {
		t.Fatalf("bandwidth should shrink with n: n=2000→%v, n=20000→%v", narrow, big)
	}
}

func TestDensityAtInterpolation(t *testing.T) {
	xs := normalSample(9, 5000, 0, 1)
	k := NewKDE(xs, 0, 256)
	// On-grid equals stored value.
	if got := k.DensityAt(k.Xs[100]); math.Abs(got-k.Density[100]) > 1e-12 {
		t.Fatalf("on-grid DensityAt mismatch: %v vs %v", got, k.Density[100])
	}
	// Off-grid lies between neighbors.
	mid := (k.Xs[100] + k.Xs[101]) / 2
	d := k.DensityAt(mid)
	lo, hi := k.Density[100], k.Density[101]
	if lo > hi {
		lo, hi = hi, lo
	}
	if d < lo-1e-12 || d > hi+1e-12 {
		t.Fatalf("interpolated density %v outside [%v,%v]", d, lo, hi)
	}
	// Outside the grid is 0.
	if k.DensityAt(k.Xs[0]-1) != 0 || k.DensityAt(k.Xs[len(k.Xs)-1]+1) != 0 {
		t.Fatal("out-of-grid density should be 0")
	}
}

// Property: the KDE density is non-negative everywhere, for random
// samples and bandwidths.
func TestKDENonNegativeProperty(t *testing.T) {
	st := rng.New(100)
	for trial := 0; trial < 50; trial++ {
		r := rng.New(st.Uint64())
		n := 10 + r.IntN(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(0, 2000)
		}
		h := r.Uniform(0.1, 100)
		k := NewKDE(xs, h, 128)
		for i, d := range k.Density {
			if d < 0 || math.IsNaN(d) {
				t.Fatalf("trial %d: density[%d] = %v", trial, i, d)
			}
		}
	}
}

// Property: the high power mode is invariant (±small tolerance) to
// window-average downsampling when the modes are well separated —
// the paper's Fig. 2 finding.
func TestHighPowerModeStableUnderDownsampling(t *testing.T) {
	// Build a synthetic power timeline alternating between two levels.
	r := rng.New(11)
	var fine []float64
	for seg := 0; seg < 60; seg++ {
		level := 350.0
		if seg%2 == 0 {
			level = 150
		}
		for i := 0; i < 100; i++ { // 100 samples at 0.1 s = 10 s per segment
			fine = append(fine, level+r.Normal(0, 6))
		}
	}
	hpmFine, ok := HighPowerModeOf(fine)
	if !ok {
		t.Fatal("no fine-grained mode")
	}
	// Downsample by straight averaging of groups of k (0.1s → k/10 s).
	for _, k := range []int{2, 5, 10, 20, 50} {
		var coarse []float64
		for i := 0; i+k <= len(fine); i += k {
			var s float64
			for j := 0; j < k; j++ {
				s += fine[i+j]
			}
			coarse = append(coarse, s/float64(k))
		}
		hpm, ok := HighPowerModeOf(coarse)
		if !ok {
			t.Fatalf("k=%d: no mode", k)
		}
		if math.Abs(hpm.X-hpmFine.X) > 20 {
			t.Fatalf("k=%d: high power mode moved %v → %v", k, hpmFine.X, hpm.X)
		}
	}
}

// The truncated kernel must agree with the untruncated O(n·gridN)
// evaluation to far better than any downstream tolerance.
func TestKDETruncationMatchesFullKernel(t *testing.T) {
	xs := normalSample(12, 2000, 500, 40)
	k := NewKDE(xs, 0, 256)
	h := k.Bandwidth
	invH := 1 / h
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	var maxDen float64
	for _, d := range k.Density {
		if d > maxDen {
			maxDen = d
		}
	}
	for i, x := range k.Xs {
		var full float64
		for _, xi := range xs {
			u := (x - xi) * invH
			full += math.Exp(-0.5 * u * u)
		}
		full *= norm
		if diff := math.Abs(k.Density[i] - full); diff > 1e-3*maxDen {
			t.Fatalf("grid %d (x=%v): truncated %v vs full %v (diff %v)",
				i, x, k.Density[i], full, diff)
		}
	}
}

func BenchmarkKDE(b *testing.B) {
	for _, bc := range []struct {
		name  string
		n     int
		gridN int
	}{
		{"n1000_grid512", 1000, 512},
		{"n5000_grid512", 5000, 512},
		{"n20000_grid512", 20000, 512},
		{"n5000_grid1024", 5000, 1024},
	} {
		b.Run(bc.name, func(b *testing.B) {
			xs := normalSample(1, bc.n, 1000, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NewKDE(xs, 0, bc.gridN)
			}
		})
	}
}
