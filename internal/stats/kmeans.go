package stats

import (
	"fmt"
	"math"

	"vasppower/internal/rng"
)

// KMeans clusters feature vectors — the core of the paper's proposed
// "top-down" statistical approach to the long tail of workloads that
// cannot each get a dedicated power study (§VI-B): jobs are grouped
// by their power signatures rather than by name.
type KMeans struct {
	Centers     [][]float64
	Assignments []int
	Inertia     float64 // sum of squared distances to assigned centers
	Iterations  int
}

// KMeansFit clusters points into k clusters using Lloyd's algorithm
// with k-means++ seeding. Deterministic given the seed.
func KMeansFit(points [][]float64, k int, seed uint64, maxIter int) (*KMeans, error) {
	n := len(points)
	if k <= 0 {
		return nil, fmt.Errorf("stats: k-means with k=%d", k)
	}
	if n < k {
		return nil, fmt.Errorf("stats: %d points for %d clusters", n, k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("stats: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	r := rng.New(seed)

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	first := append([]float64(nil), points[r.IntN(n)]...)
	centers = append(centers, first)
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total <= 0 {
			pick = r.IntN(n) // all points coincide with centers
		} else {
			x := r.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if x <= acc {
					pick = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
	}

	km := &KMeans{Centers: centers, Assignments: make([]int, n)}
	for iter := 0; iter < maxIter; iter++ {
		km.Iterations = iter + 1
		changed := false
		// Assign.
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for ci, c := range km.Centers {
				if d := sqDist(p, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if km.Assignments[i] != best {
				km.Assignments[i] = best
				changed = true
			}
		}
		// Update.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for ci := range sums {
			sums[ci] = make([]float64, dim)
		}
		for i, p := range points {
			ci := km.Assignments[i]
			counts[ci]++
			for j, v := range p {
				sums[ci][j] += v
			}
		}
		for ci := range km.Centers {
			if counts[ci] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, km.Centers[km.Assignments[i]]); d > farD {
						far, farD = i, d
					}
				}
				km.Centers[ci] = append([]float64(nil), points[far]...)
				continue
			}
			for j := range km.Centers[ci] {
				km.Centers[ci][j] = sums[ci][j] / float64(counts[ci])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	km.Inertia = 0
	for i, p := range points {
		km.Inertia += sqDist(p, km.Centers[km.Assignments[i]])
	}
	return km, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Standardize rescales each feature column to zero mean and unit
// variance in place-copy form (columns with zero spread are left
// centered only). Returns the rescaled copy.
func Standardize(points [][]float64) [][]float64 {
	n := len(points)
	if n == 0 {
		return nil
	}
	dim := len(points[0])
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, p := range points {
		for j, v := range p {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, p := range points {
		for j, v := range p {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	out := make([][]float64, n)
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
	}
	for i, p := range points {
		out[i] = make([]float64, dim)
		for j, v := range p {
			if std[j] > 0 {
				out[i][j] = (v - mean[j]) / std[j]
			} else {
				out[i][j] = v - mean[j]
			}
		}
	}
	return out
}

// ClusterPurity scores a clustering against ground-truth labels: the
// fraction of points whose cluster's majority label matches their
// own. 1.0 means the clusters reproduce the labels exactly.
func ClusterPurity(assignments []int, labels []string) (float64, error) {
	if len(assignments) != len(labels) {
		return 0, fmt.Errorf("stats: %d assignments vs %d labels", len(assignments), len(labels))
	}
	if len(assignments) == 0 {
		return 0, fmt.Errorf("stats: empty clustering")
	}
	counts := map[int]map[string]int{}
	for i, a := range assignments {
		if counts[a] == nil {
			counts[a] = map[string]int{}
		}
		counts[a][labels[i]]++
	}
	correct := 0
	for _, byLabel := range counts {
		best := 0
		for _, c := range byLabel {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assignments)), nil
}
