package stats

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

func blobs(seed uint64, centers [][]float64, perBlob int, spread float64) ([][]float64, []string) {
	r := rng.New(seed)
	var pts [][]float64
	var labels []string
	names := []string{"a", "b", "c", "d", "e"}
	for ci, c := range centers {
		for i := 0; i < perBlob; i++ {
			p := make([]float64, len(c))
			for j, v := range c {
				p[j] = v + r.Normal(0, spread)
			}
			pts = append(pts, p)
			labels = append(labels, names[ci])
		}
	}
	return pts, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	pts, labels := blobs(1, centers, 50, 0.5)
	km, err := KMeansFit(pts, 3, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	purity, err := ClusterPurity(km.Assignments, labels)
	if err != nil {
		t.Fatal(err)
	}
	if purity < 0.99 {
		t.Fatalf("purity %v on well-separated blobs", purity)
	}
	if km.Inertia > float64(len(pts))*3*0.5*0.5*3 {
		t.Fatalf("inertia %v too large", km.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := blobs(2, [][]float64{{0, 0}, {5, 5}}, 30, 0.4)
	a, _ := KMeansFit(pts, 2, 9, 100)
	b, _ := KMeansFit(pts, 2, 9, 100)
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("k-means not deterministic for equal seeds")
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := KMeansFit(pts, 0, 1, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeansFit(pts, 3, 1, 10); err == nil {
		t.Fatal("more clusters than points accepted")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := KMeansFit(ragged, 1, 1, 10); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{3, 3}
	}
	km, err := KMeansFit(pts, 2, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if km.Inertia > 1e-12 {
		t.Fatalf("identical points should give zero inertia, got %v", km.Inertia)
	}
}

func TestStandardize(t *testing.T) {
	pts := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	std := Standardize(pts)
	// Each column: mean 0, stddev 1.
	for j := 0; j < 2; j++ {
		var mean, varr float64
		for _, p := range std {
			mean += p[j]
		}
		mean /= 3
		for _, p := range std {
			varr += (p[j] - mean) * (p[j] - mean)
		}
		if math.Abs(mean) > 1e-12 || math.Abs(math.Sqrt(varr/3)-1) > 1e-12 {
			t.Fatalf("column %d not standardized", j)
		}
	}
	// Constant columns centered, not divided.
	cst := Standardize([][]float64{{5, 1}, {5, 2}})
	if cst[0][0] != 0 || cst[1][0] != 0 {
		t.Fatal("constant column not centered")
	}
	if Standardize(nil) != nil {
		t.Fatal("empty input should return nil")
	}
	// Original untouched.
	if pts[0][0] != 1 {
		t.Fatal("Standardize mutated input")
	}
}

func TestClusterPurity(t *testing.T) {
	p, err := ClusterPurity([]int{0, 0, 1, 1}, []string{"x", "x", "y", "y"})
	if err != nil || p != 1 {
		t.Fatalf("purity = %v, %v", p, err)
	}
	p, _ = ClusterPurity([]int{0, 0, 0, 0}, []string{"x", "x", "y", "y"})
	if p != 0.5 {
		t.Fatalf("degenerate purity = %v", p)
	}
	if _, err := ClusterPurity([]int{0}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ClusterPurity(nil, nil); err == nil {
		t.Fatal("empty clustering accepted")
	}
}

// Property: k-means inertia never increases when k grows (on the same
// data and seed family, best of a few seeds).
func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	pts, _ := blobs(3, [][]float64{{0, 0}, {8, 0}, {0, 8}, {8, 8}}, 25, 1.0)
	best := func(k int) float64 {
		b := math.Inf(1)
		for seed := uint64(1); seed <= 5; seed++ {
			km, err := KMeansFit(pts, k, seed, 100)
			if err != nil {
				t.Fatal(err)
			}
			if km.Inertia < b {
				b = km.Inertia
			}
		}
		return b
	}
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		in := best(k)
		if in > prev+1e-9 {
			t.Fatalf("inertia increased from k=%d to k=%d", k-1, k)
		}
		prev = in
	}
}
