package stats

import (
	"math"
	"testing"
	"testing/quick"

	"vasppower/internal/rng"
)

// Property-based tests on the statistical toolkit.

func randomSample(seed uint64, n int) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	base := r.Uniform(100, 1500)
	spread := r.Uniform(1, 200)
	for i := range xs {
		xs[i] = base + r.Normal(0, spread)
	}
	return xs
}

// The high power mode always lies within [min, max] of the sample.
func TestHighModeWithinRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 20 + int(nRaw)
		xs := randomSample(seed, n)
		mode, ok := HighPowerModeOf(xs)
		if !ok {
			return false
		}
		s, _ := Describe(xs)
		// KDE support extends 3h past the sample; the mode itself must
		// stay within a bandwidth of the data range.
		k := SilvermanBandwidth(xs)
		return mode.X >= s.Min-3*k && mode.X <= s.Max+3*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Shifting a sample shifts its high power mode by the same amount.
func TestModeShiftEquivarianceProperty(t *testing.T) {
	f := func(seed uint64, shiftRaw uint8) bool {
		xs := randomSample(seed, 200)
		shift := float64(shiftRaw) * 5
		ys := make([]float64, len(xs))
		for i, v := range xs {
			ys[i] = v + shift
		}
		m1, ok1 := HighPowerModeOf(xs)
		m2, ok2 := HighPowerModeOf(ys)
		if !ok1 || !ok2 {
			return false
		}
		return math.Abs((m2.X-m1.X)-shift) < 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Scaling a sample scales mode and FWHM proportionally.
func TestModeScaleEquivarianceProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := 1 + float64(kRaw)/64
		xs := randomSample(seed, 300)
		ys := make([]float64, len(xs))
		for i, v := range xs {
			ys[i] = v * k
		}
		m1, ok1 := HighPowerModeOf(xs)
		m2, ok2 := HighPowerModeOf(ys)
		if !ok1 || !ok2 {
			return false
		}
		if math.Abs(m2.X-k*m1.X) > 0.03*k*m1.X {
			return false
		}
		if m1.FWHM > 0 && math.Abs(m2.FWHM-k*m1.FWHM) > 0.25*k*m1.FWHM+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Histogram counts always total the input size, whatever the range.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed uint64, binsRaw, loRaw, hiRaw uint8) bool {
		bins := 1 + int(binsRaw)%64
		lo := float64(loRaw)
		hi := lo + 1 + float64(hiRaw)
		xs := randomSample(seed, 150)
		h := NewHistogram(xs, bins, lo, hi)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs) && h.Total() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Describe and Quantile agree on the median and quartiles.
func TestDescribeQuantileAgreementProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		xs := randomSample(seed, 5+int(nRaw))
		s, err := Describe(xs)
		if err != nil {
			return false
		}
		return math.Abs(s.Median-Quantile(xs, 0.5)) < 1e-9 &&
			math.Abs(s.Q1-Quantile(xs, 0.25)) < 1e-9 &&
			math.Abs(s.Q3-Quantile(xs, 0.75)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// KMeans assignments always reference valid centers, and every center
// index in range is used or the cluster was legitimately re-seeded.
func TestKMeansAssignmentValidityProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		n := 20 + r.IntN(100)
		k := 1 + int(kRaw)%6
		if n < k {
			return true
		}
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{r.Float64() * 10, r.Float64() * 10}
		}
		km, err := KMeansFit(pts, k, seed, 50)
		if err != nil {
			return false
		}
		for _, a := range km.Assignments {
			if a < 0 || a >= k {
				return false
			}
		}
		return km.Inertia >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
