package stats

// Violin is the data behind one violin plot: a KDE profile plus the
// quartile lines, as in the paper's Figure 9.
type Violin struct {
	Label   string
	Summary Summary
	KDE     *KDE
	// Modes of the distribution (≥ DefaultModeThreshold), low→high.
	Modes []Mode
}

// NewViolin summarizes a sample as a violin. Empty samples yield a nil
// violin.
func NewViolin(label string, xs []float64) *Violin {
	if len(xs) == 0 {
		return nil
	}
	s, _ := Describe(xs)
	k := NewKDE(xs, 0, 512)
	return &Violin{
		Label:   label,
		Summary: s,
		KDE:     k,
		Modes:   k.Modes(DefaultModeThreshold),
	}
}

// HighPowerMode returns the violin's high power mode (the rightmost
// mode). ok is false when the sample had no resolvable mode.
func (v *Violin) HighPowerMode() (Mode, bool) {
	if v == nil || len(v.Modes) == 0 {
		return Mode{}, false
	}
	return v.Modes[len(v.Modes)-1], true
}

// IsMultiModal reports whether the distribution has at least two modes
// above the default threshold — the paper observes VASP power
// distributions are "non-normal and at least bimodal" (§III-C).
func (v *Violin) IsMultiModal() bool {
	return v != nil && len(v.Modes) >= 2
}
