package telemetry

import (
	"sync/atomic"

	"vasppower/internal/obs"
)

// Metrics counts stream traffic across every Hub in the process.
// Published counts samples delivered to at least one subscriber;
// Dropped counts ring-buffer evictions (slow subscribers); and
// Subscriptions counts Subscribe calls. Install with SetMetrics; the
// counters land in the run manifest through the registry snapshot, so
// a run's drop process is part of its record. The nil default costs
// one atomic load per operation.
type Metrics struct {
	Published     *obs.Counter
	Dropped       *obs.Counter
	Subscriptions *obs.Counter
}

// NewMetrics registers the stream metric set under "telemetry." in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Published:     reg.Counter("telemetry.published"),
		Dropped:       reg.Counter("telemetry.dropped"),
		Subscriptions: reg.Counter("telemetry.subscriptions"),
	}
}

var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the process-wide stream
// metrics. Install once at startup, before hubs see traffic.
func SetMetrics(m *Metrics) { metrics.Store(m) }
