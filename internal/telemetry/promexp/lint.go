package promexp

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Metric is one parsed sample line of a text-format scrape.
type Metric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key returns a canonical series identity (name plus sorted labels)
// for cross-scrape comparison.
func (m Metric) Key() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	pairs := make([]string, 0, len(m.Labels))
	for k, v := range m.Labels {
		pairs = append(pairs, k+"="+v)
	}
	// Deterministic small-slice sort without pulling in package sort's
	// interface ceremony per call site would be overkill — just sort.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j] < pairs[j-1]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	return m.Name + "{" + strings.Join(pairs, ",") + "}"
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	typeRe       = regexp.MustCompile(`^(counter|gauge|histogram|summary|untyped)$`)
)

// Parse lints a text-format exposition (version 0.0.4) and returns
// its samples. It enforces the format rules the CI scrape check
// relies on: well-formed HELP/TYPE comments, TYPE declared before the
// family's first sample and only once, valid metric and label names,
// parseable values, and no duplicate series within one scrape.
func Parse(text string) ([]Metric, error) {
	var out []Metric
	typed := make(map[string]string)    // family → declared type
	seenSample := make(map[string]bool) // family → sample emitted
	seenSeries := make(map[string]bool) // series key → emitted
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "HELP":
				if !metricNameRe.MatchString(fields[2]) {
					return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, fields[2])
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE needs a name and a type", lineNo)
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				if !metricNameRe.MatchString(name) {
					return nil, fmt.Errorf("line %d: bad metric name %q in TYPE", lineNo, name)
				}
				if !typeRe.MatchString(typ) {
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if seenSample[name] {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typed[name] = typ
			default:
				return nil, fmt.Errorf("line %d: unknown comment keyword %q", lineNo, fields[1])
			}
			continue
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := m.Key()
		if seenSeries[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true
		seenSample[familyOf(m.Name)] = true
		out = append(out, m)
	}
	return out, nil
}

// familyOf strips the histogram/summary sample suffixes so _bucket,
// _sum and _count lines attach to their declared family.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseSample(line string) (Metric, error) {
	m := Metric{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return m, fmt.Errorf("malformed sample %q", line)
	} else {
		m.Name = rest[:i]
		rest = rest[i:]
	}
	if !metricNameRe.MatchString(m.Name) {
		return m, fmt.Errorf("bad metric name %q", m.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return m, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return m, err
		}
		m.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp is legal in the format; this exporter never
	// writes one, and the linter rejects it to keep scrapes comparable.
	if strings.ContainsAny(rest, " \t") {
		return m, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return m, fmt.Errorf("bad value in %q: %w", line, err)
	}
	m.Value = v
	return m, nil
}

func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted value for label %q", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			ch := s[i]
			if ch == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i], name)
				}
				continue
			}
			if ch == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(ch)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "":
		return 0, fmt.Errorf("missing value")
	}
	return strconv.ParseFloat(s, 64)
}
