// Package promexp is a dependency-free Prometheus text-format
// exporter for the streaming telemetry layer: a Collector subscribes
// to a telemetry Hub, folds the sample stream into per-(host, domain)
// watts gauges and cumulative joules counters, and serves them — plus
// stream health counters and a re-export of the whole obs metrics
// registry — in the text exposition format (version 0.0.4) at
// /metrics on the obs debug mux.
package promexp

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"

	"vasppower/internal/hw/node"
	"vasppower/internal/obs"
	"vasppower/internal/telemetry"
)

// namespace prefixes every exported metric family.
const namespace = "vasppower"

// Collector drains a telemetry subscription in a background goroutine
// and serves the folded state over HTTP. The collector's subscription
// is bounded like any other: if scrapes stall and the simulation
// outruns the ring, old samples are shed (watts gauges skip ahead;
// joules counters integrate only the samples that survive, and the
// shed windows are visible in the dropped-samples counter).
type Collector struct {
	hub *telemetry.Hub
	sub *telemetry.Subscription
	reg *obs.Registry

	mu     sync.Mutex
	series map[seriesKey]*seriesState

	done chan struct{}
}

type seriesKey struct {
	host   string
	domain node.Domain
}

type seriesState struct {
	watts  float64 // most recent sample
	joules float64 // ∫ watts dt over received samples
	lastT  float64 // stream time of the last folded sample
}

// NewCollector subscribes to hub (all domains, ring of ringCap
// samples) and starts the drain goroutine. reg, when non-nil, is
// re-exported on every scrape.
func NewCollector(hub *telemetry.Hub, reg *obs.Registry, ringCap int) (*Collector, error) {
	sub, err := hub.Subscribe("", ringCap)
	if err != nil {
		return nil, err
	}
	c := &Collector{
		hub:    hub,
		sub:    sub,
		reg:    reg,
		series: make(map[seriesKey]*seriesState),
		done:   make(chan struct{}),
	}
	go c.run()
	return c, nil
}

func (c *Collector) run() {
	defer close(c.done)
	for {
		smp, ok := c.sub.Next()
		if !ok {
			return
		}
		c.mu.Lock()
		k := seriesKey{smp.Host, smp.Domain}
		st := c.series[k]
		if st == nil {
			st = &seriesState{}
			c.series[k] = st
		}
		// Per-host stream clocks are monotone (they start at 0 and
		// resume across re-registrations), so T - lastT is the sample's
		// window and the rectangle rule integrates the trace exactly.
		if smp.T > st.lastT {
			st.joules += smp.Watts * (smp.T - st.lastT)
			st.lastT = smp.T
		}
		st.watts = smp.Watts
		c.mu.Unlock()
	}
}

// Close stops the drain goroutine and detaches from the hub.
func (c *Collector) Close() {
	c.sub.Close()
	<-c.done
}

// ServeHTTP renders the current state in Prometheus text format.
func (c *Collector) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	c.write(&b)
	io.WriteString(w, b.String())
}

// Text returns one scrape's body (what ServeHTTP writes).
func (c *Collector) Text() string {
	var b strings.Builder
	c.write(&b)
	return b.String()
}

func (c *Collector) write(b *strings.Builder) {
	c.mu.Lock()
	keys := make([]seriesKey, 0, len(c.series))
	for k := range c.series {
		keys = append(keys, k)
	}
	states := make(map[seriesKey]seriesState, len(c.series))
	for k, st := range c.series {
		states[k] = *st
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].host != keys[j].host {
			return keys[i].host < keys[j].host
		}
		return keys[i].domain < keys[j].domain
	})

	family(b, namespace+"_power_watts", "gauge",
		"Latest sampled power per host and NVML-style domain scope.")
	for _, k := range keys {
		sample(b, namespace+"_power_watts", hostDomainLabels(k), states[k].watts)
	}
	family(b, namespace+"_energy_joules_total", "counter",
		"Cumulative energy per host and domain, integrated over the sample stream.")
	for _, k := range keys {
		sample(b, namespace+"_energy_joules_total", hostDomainLabels(k), states[k].joules)
	}

	family(b, namespace+"_telemetry_subscribers", "gauge",
		"Live subscriptions on the telemetry hub.")
	sample(b, namespace+"_telemetry_subscribers", "", float64(c.hub.Subscribers()))
	family(b, namespace+"_telemetry_dropped_samples_total", "counter",
		"Samples shed by bounded subscriber rings across the hub (slow-consumer drops).")
	sample(b, namespace+"_telemetry_dropped_samples_total", "", float64(c.hub.Dropped()))
	family(b, namespace+"_scrape_dropped_samples_total", "counter",
		"Samples this exporter's own subscription shed before folding.")
	sample(b, namespace+"_scrape_dropped_samples_total", "", float64(c.sub.Dropped()))

	c.writeRegistry(b)
}

// writeRegistry re-exports the obs registry snapshot: counters gain a
// _total suffix, histograms become cumulative le-bucketed families.
func (c *Collector) writeRegistry(b *strings.Builder) {
	snap := c.reg.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := namespace + "_" + sanitize(n) + "_total"
		family(b, fam, "counter", "Registry counter "+n+".")
		sample(b, fam, "", float64(snap.Counters[n]))
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := namespace + "_" + sanitize(n)
		family(b, fam, "gauge", "Registry gauge "+n+".")
		sample(b, fam, "", float64(snap.Gauges[n]))
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		fam := namespace + "_" + sanitize(n)
		family(b, fam, "histogram", "Registry histogram "+n+".")
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			sample(b, fam+"_bucket", fmt.Sprintf("le=%q", formatFloat(bk.LE)), float64(cum))
		}
		sample(b, fam+"_bucket", `le="+Inf"`, float64(h.Count))
		sample(b, fam+"_sum", "", h.Sum)
		sample(b, fam+"_count", "", float64(h.Count))
	}
}

func hostDomainLabels(k seriesKey) string {
	return `host="` + escapeLabel(k.host) + `",domain="` + string(k.domain) + `"`
}

func family(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func sample(b *strings.Builder, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(b, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(b, "%s{%s} %s\n", name, labels, formatFloat(v))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format
// (backslash, double quote, newline).
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// sanitize maps a registry metric name ("omni.inserts") onto the
// Prometheus name alphabet.
func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
