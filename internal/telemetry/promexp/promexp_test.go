package promexp

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vasppower/internal/hw/node"
	"vasppower/internal/obs"
	"vasppower/internal/telemetry"
)

// publish pushes one full domain breakdown for host at stream time t.
func publish(h *telemetry.Hub, host string, t float64, gpu, mem, mod, nd float64) {
	h.Publish(telemetry.Sample{Host: host, Domain: node.DomainGPU, T: t, Watts: gpu})
	h.Publish(telemetry.Sample{Host: host, Domain: node.DomainMemory, T: t, Watts: mem})
	h.Publish(telemetry.Sample{Host: host, Domain: node.DomainModule, T: t, Watts: mod})
	h.Publish(telemetry.Sample{Host: host, Domain: node.DomainNode, T: t, Watts: nd})
}

// drain waits for the collector's background goroutine to fold
// everything published so far.
func drain(t *testing.T, c *Collector, wantSeries int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.series)
		c.mu.Unlock()
		if n >= wantSeries {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("collector did not fold %d series in time", wantSeries)
}

func find(t *testing.T, ms []Metric, name string, labels map[string]string) Metric {
	t.Helper()
outer:
	for _, m := range ms {
		if m.Name != name {
			continue
		}
		for k, v := range labels {
			if m.Labels[k] != v {
				continue outer
			}
		}
		return m
	}
	t.Fatalf("no sample %s%v", name, labels)
	return Metric{}
}

func TestCollectorScrape(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("omni.inserts").Add(7)
	reg.Gauge("pool.depth").Set(3)
	reg.Histogram("query.seconds", []float64{0.1, 1}).Observe(0.5)
	reg.Histogram("query.seconds", nil).Observe(5) // overflow bucket

	h := telemetry.NewHub()
	c, err := NewCollector(h, reg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	publish(h, "nid000001", 1.0, 140, 40, 190, 700)
	publish(h, "nid000001", 2.0, 150, 50, 210, 720)
	drain(t, c, 4)

	srv := httptest.NewServer(c)
	defer srv.Close()
	text := c.Text()
	ms, err := Parse(text)
	if err != nil {
		t.Fatalf("scrape does not lint: %v\n%s", err, text)
	}

	// Gauges carry the latest sample; joules integrate both windows.
	w := find(t, ms, "vasppower_power_watts", map[string]string{"host": "nid000001", "domain": "module"})
	if w.Value != 210 {
		t.Fatalf("module watts = %v, want 210", w.Value)
	}
	j := find(t, ms, "vasppower_energy_joules_total", map[string]string{"host": "nid000001", "domain": "node"})
	if want := 700*1.0 + 720*1.0; math.Abs(j.Value-want) > 1e-9 {
		t.Fatalf("node joules = %v, want %v", j.Value, want)
	}

	// Registry re-export: counter gets _total, histogram is cumulative
	// with a +Inf bucket matching _count.
	if m := find(t, ms, "vasppower_omni_inserts_total", nil); m.Value != 7 {
		t.Fatalf("re-exported counter = %v", m.Value)
	}
	if m := find(t, ms, "vasppower_pool_depth", nil); m.Value != 3 {
		t.Fatalf("re-exported gauge = %v", m.Value)
	}
	b01 := find(t, ms, "vasppower_query_seconds_bucket", map[string]string{"le": "0.1"})
	b1 := find(t, ms, "vasppower_query_seconds_bucket", map[string]string{"le": "1"})
	binf := find(t, ms, "vasppower_query_seconds_bucket", map[string]string{"le": "+Inf"})
	cnt := find(t, ms, "vasppower_query_seconds_count", nil)
	if b01.Value != 0 || b1.Value != 1 || binf.Value != 2 || cnt.Value != 2 {
		t.Fatalf("histogram buckets not cumulative: %v %v %v count %v",
			b01.Value, b1.Value, binf.Value, cnt.Value)
	}
	if b01.Value > b1.Value || b1.Value > binf.Value {
		t.Fatal("bucket counts must be non-decreasing in le")
	}

	// Stream health counters present.
	find(t, ms, "vasppower_telemetry_subscribers", nil)
	find(t, ms, "vasppower_telemetry_dropped_samples_total", nil)
}

func TestJoulesMonotoneAcrossScrapes(t *testing.T) {
	h := telemetry.NewHub()
	c, err := NewCollector(h, nil, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	publish(h, "nid000001", 1.0, 100, 30, 140, 600)
	drain(t, c, 4)
	first, err := Parse(c.Text())
	if err != nil {
		t.Fatal(err)
	}
	publish(h, "nid000001", 2.0, 100, 30, 140, 600)
	time.Sleep(20 * time.Millisecond)
	second, err := Parse(c.Text())
	if err != nil {
		t.Fatal(err)
	}
	for _, m1 := range first {
		if m1.Name != "vasppower_energy_joules_total" {
			continue
		}
		for _, m2 := range second {
			if m2.Key() == m1.Key() && m2.Value < m1.Value {
				t.Fatalf("joules went backwards for %s: %v -> %v", m1.Key(), m1.Value, m2.Value)
			}
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	bad := []string{
		"1bad_name 3\n",
		"ok{label=unquoted} 3\n",
		"ok{l=\"v\"} notanumber\n",
		"# TYPE ok wavelet\nok 3\n",
		"ok 1\n# TYPE ok counter\n",
		"# TYPE ok counter\n# TYPE ok counter\nok 1\n",
		"dup{a=\"1\"} 1\ndup{a=\"1\"} 2\n",
		"ok{l=\"unterminated} 3\n",
		"trailing 3 1234567\n",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Fatalf("lint accepted %q", text)
		}
	}
	good := "# HELP ok fine\n# TYPE ok gauge\nok{l=\"a b\",m=\"c\\\"d\"} 3.5\nok2 +Inf\n"
	ms, err := Parse(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Labels["m"] != `c"d` {
		t.Fatalf("parse = %+v", ms)
	}
}

func TestEscapeLabel(t *testing.T) {
	h := telemetry.NewHub()
	c, err := NewCollector(h, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h.Publish(telemetry.Sample{Host: "we\"ird\\host\n", Domain: node.DomainNode, T: 1, Watts: 5})
	drain(t, c, 1)
	text := c.Text()
	ms, err := Parse(text)
	if err != nil {
		t.Fatalf("escaped scrape does not lint: %v\n%s", err, text)
	}
	m := find(t, ms, "vasppower_power_watts", map[string]string{"domain": "node"})
	if m.Labels["host"] != "we\"ird\\host\n" {
		t.Fatalf("host label round-trip = %q", m.Labels["host"])
	}
	if !strings.Contains(text, `\n`) {
		t.Fatal("newline not escaped in exposition")
	}
}
