// Command promlint validates /metrics scrapes of a live vasppower
// run, as captured by the CI telemetry-scrape job: it lints each file
// against the Prometheus text exposition format, and given two
// consecutive scrapes asserts the stream's semantic invariants —
// joules counters are monotone non-decreasing between scrapes, and
// every NVML domain scope (gpu, memory, module, node) is present with
// nonzero power and energy by the second scrape.
//
// Usage: promlint scrape1.txt [scrape2.txt]
package main

import (
	"fmt"
	"os"
	"strings"

	"vasppower/internal/telemetry/promexp"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: promlint scrape1.txt [scrape2.txt]")
		os.Exit(2)
	}
	scrapes := make([][]promexp.Metric, 0, 2)
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal(err.Error())
		}
		ms, err := promexp.Parse(string(raw))
		if err != nil {
			fatal(fmt.Sprintf("%s: %v", path, err))
		}
		fmt.Printf("%s: %d samples, format OK\n", path, len(ms))
		scrapes = append(scrapes, ms)
	}
	if len(scrapes) == 1 {
		return
	}
	if err := checkMonotoneJoules(scrapes[0], scrapes[1]); err != nil {
		fatal(err.Error())
	}
	if err := checkDomainsNonzero(scrapes[1]); err != nil {
		fatal(err.Error())
	}
	fmt.Println("joules monotone, all four domain scopes live")
}

func checkMonotoneJoules(first, second []promexp.Metric) error {
	prev := make(map[string]float64)
	for _, m := range first {
		if m.Name == "vasppower_energy_joules_total" {
			prev[m.Key()] = m.Value
		}
	}
	if len(prev) == 0 {
		return fmt.Errorf("first scrape has no energy counters")
	}
	seen := 0
	for _, m := range second {
		if m.Name != "vasppower_energy_joules_total" {
			continue
		}
		if v0, ok := prev[m.Key()]; ok {
			seen++
			if m.Value < v0 {
				return fmt.Errorf("joules counter went backwards: %s %v -> %v", m.Key(), v0, m.Value)
			}
		}
	}
	if seen == 0 {
		return fmt.Errorf("no energy counter survived between scrapes")
	}
	return nil
}

func checkDomainsNonzero(ms []promexp.Metric) error {
	watts := make(map[string]bool) // domain → some series > 0
	joules := make(map[string]bool)
	for _, m := range ms {
		d := m.Labels["domain"]
		if d == "" || m.Value <= 0 {
			continue
		}
		switch m.Name {
		case "vasppower_power_watts":
			watts[d] = true
		case "vasppower_energy_joules_total":
			joules[d] = true
		}
	}
	var missing []string
	for _, d := range []string{"gpu", "memory", "module", "node"} {
		if !watts[d] || !joules[d] {
			missing = append(missing, d)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("domain scopes without nonzero power+energy: %s", strings.Join(missing, ", "))
	}
	return nil
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "promlint: "+msg)
	os.Exit(1)
}
