package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"vasppower/internal/hw/node"
	"vasppower/internal/timeseries"
)

// timeEps absorbs float accumulation when comparing window edges to
// trace ends.
const timeEps = 1e-9

// Sampler turns growing node traces into a sample stream. Each
// registered host is walked incrementally: Poll emits one sample per
// (whole interval, domain) pair recorded since the previous Poll,
// using resumable segment cursors so a poll costs only the new
// segments, not the whole trace.
//
// Stream time is per-host monotone across registrations: when a host
// name is unregistered and later re-registered (the next repeat of a
// sweep reuses "nid000001"), its stream clock resumes where it left
// off, so downstream consumers — the Prometheus exporter's joules
// counters, an omni streaming insert — see strictly increasing time
// per host.
type Sampler struct {
	hub      *Hub
	interval float64

	mu     sync.Mutex
	hosts  map[string]*hostState
	clocks map[string]float64 // stream seconds already emitted per host name
}

type hostState struct {
	n       *node.Node
	offset  float64 // stream time of the trace's origin
	pos     float64 // trace time already emitted
	cursors map[node.Domain]*timeseries.Cursor
}

// NewSampler returns a sampler publishing into hub every interval
// seconds of trace time.
func NewSampler(hub *Hub, interval float64) (*Sampler, error) {
	if hub == nil {
		return nil, fmt.Errorf("telemetry: nil hub")
	}
	if !(interval > 0) || math.IsInf(interval, 1) { // rejects NaN too
		return nil, fmt.Errorf("telemetry: sample interval %v, want finite > 0", interval)
	}
	return &Sampler{
		hub:      hub,
		interval: interval,
		hosts:    make(map[string]*hostState),
		clocks:   make(map[string]float64),
	}, nil
}

// Interval returns the sample spacing in seconds.
func (s *Sampler) Interval() float64 { return s.interval }

// Register starts sampling a node under the given host name. Samples
// already emitted under the same name (a previous registration) push
// this registration's stream clock forward; the node's trace is read
// from its current start, so register nodes with freshly reset traces.
func (s *Sampler) Register(host string, n *node.Node) error {
	if host == "" || n == nil {
		return fmt.Errorf("telemetry: empty host or nil node")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.hosts[host]; ok {
		return fmt.Errorf("telemetry: host %q already registered", host)
	}
	hs := &hostState{
		n:       n,
		offset:  s.clocks[host],
		cursors: make(map[node.Domain]*timeseries.Cursor, 4),
	}
	for _, d := range node.Domains() {
		hs.cursors[d] = timeseries.NewCursor(n.DomainTrace(d))
	}
	s.hosts[host] = hs
	return nil
}

// Unregister stops sampling a host: any partial-interval tail of its
// trace is flushed as one final (shorter) sample, the host's stream
// clock is checkpointed for a future re-registration, and the host is
// removed. Errors on unknown hosts.
func (s *Sampler) Unregister(host string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs, ok := s.hosts[host]
	if !ok {
		return fmt.Errorf("telemetry: host %q not registered", host)
	}
	s.pollHostLocked(host, hs)
	if dur := hs.n.TraceDuration(); dur > hs.pos+timeEps {
		s.emitLocked(host, hs, hs.pos, dur)
		hs.pos = dur
	}
	s.clocks[host] = hs.offset + hs.pos
	delete(s.hosts, host)
	return nil
}

// Poll walks every registered host's traces and publishes one sample
// per domain for each whole interval recorded since the last Poll.
// Returns the number of samples published. Hosts are visited in sorted
// order, so the emission sequence is deterministic.
func (s *Sampler) Poll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.hosts))
	for h := range s.hosts {
		names = append(names, h)
	}
	sort.Strings(names)
	total := 0
	for _, h := range names {
		total += s.pollHostLocked(h, s.hosts[h])
	}
	return total
}

// pollHostLocked emits all whole-interval windows recorded since the
// host's last poll.
func (s *Sampler) pollHostLocked(host string, hs *hostState) int {
	dur := hs.n.TraceDuration()
	count := 0
	for hs.pos+s.interval <= dur+timeEps {
		end := hs.pos + s.interval
		s.emitLocked(host, hs, hs.pos, math.Min(end, dur))
		hs.pos = end
		count += len(hs.cursors)
	}
	return count
}

// emitLocked publishes one window [a, b] across all domains. Domains
// are emitted in decomposition order (gpu, memory, module, node), so a
// scope-"" subscriber sees each timestamp's full breakdown together.
func (s *Sampler) emitLocked(host string, hs *hostState, a, b float64) {
	for _, d := range node.Domains() {
		c := hs.cursors[d]
		// Memoized domain traces are rebuilt after every Record; the
		// cursor's segment index survives re-attachment because the new
		// trace extends the old one.
		c.Attach(hs.n.DomainTrace(d))
		s.hub.Publish(Sample{
			Host:   host,
			Domain: d,
			T:      hs.offset + b,
			Watts:  c.MeanBetween(a, b),
		})
	}
}

// PublishRun streams a completed run's traces: each node is registered
// (under its own name), fully drained, and unregistered, advancing the
// per-host stream clocks. Nodes already registered are skipped (they
// are being sampled live). This is the hook the workload layer calls
// after every run when a process-wide sampler is installed.
func (s *Sampler) PublishRun(nodes []*node.Node) {
	for _, n := range nodes {
		if n == nil {
			continue
		}
		s.mu.Lock()
		_, live := s.hosts[n.Name]
		s.mu.Unlock()
		if live {
			continue
		}
		if err := s.Register(n.Name, n); err != nil {
			continue
		}
		_ = s.Unregister(n.Name) // Unregister drains and flushes the tail
	}
}

var defaultSink atomic.Pointer[Sampler]

// SetDefault installs (or, with nil, removes) the process-wide sampler
// that workload runs publish into. Install once at startup.
func SetDefault(s *Sampler) { defaultSink.Store(s) }

// ActiveSink returns the process-wide sampler, or nil when streaming
// telemetry is off.
func ActiveSink() *Sampler { return defaultSink.Load() }

// SampleStore is the streaming-insert surface of a telemetry database
// (omni.Store implements it).
type SampleStore interface {
	InsertSample(host, metric string, t, v float64) error
}

// Pump drains a subscription into a store until the subscription is
// closed, mapping each sample to metric "power.<domain>" (distinct
// from the batch pipeline's Cray PM metric names — "memory" there is
// host DDR, "power.memory" here is HBM). Returns the number of samples
// stored and the first insert error, if any; inserts continue past
// errors so a single out-of-order sample cannot wedge the stream.
func Pump(sub *Subscription, st SampleStore) (int, error) {
	count := 0
	var firstErr error
	for {
		smp, ok := sub.Next()
		if !ok {
			return count, firstErr
		}
		err := st.InsertSample(smp.Host, "power."+string(smp.Domain), smp.T, smp.Watts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		count++
	}
}
