// End-to-end property tests over a real simulated workload; external
// test package so it can import workloads (which itself hooks into
// telemetry) without a cycle.
package telemetry_test

import (
	"math"
	"testing"

	"vasppower/internal/hw/node"
	"vasppower/internal/telemetry"
	"vasppower/internal/workloads"
)

// Property (acceptance criterion): on a real VASP run's stream, every
// (host, timestamp) carries all four domain scopes with
// gpu + memory ≤ module ≤ node.
func TestStreamDomainInvariantOnWorkload(t *testing.T) {
	bench, ok := workloads.ByName("B.hR105_hse")
	if !ok {
		t.Fatal("benchmark missing")
	}
	out, err := workloads.Run(workloads.RunSpec{Bench: bench, Nodes: 1, Repeats: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub()
	sub, err := hub.Subscribe("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := telemetry.NewSampler(hub, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishRun(out.Nodes)
	type key struct {
		host string
		t    float64
	}
	byTS := make(map[key]map[node.Domain]float64)
	for {
		smp, ok := sub.TryNext()
		if !ok {
			break
		}
		if !node.ValidDomain(smp.Domain) {
			t.Fatalf("invalid domain %q on stream", smp.Domain)
		}
		if math.IsNaN(smp.Watts) || smp.Watts < 0 {
			t.Fatalf("bad watts %v at %+v", smp.Watts, smp)
		}
		k := key{smp.Host, smp.T}
		if byTS[k] == nil {
			byTS[k] = make(map[node.Domain]float64, 4)
		}
		byTS[k][smp.Domain] = smp.Watts
	}
	if sub.Dropped() != 0 {
		t.Fatalf("lossless subscriber dropped %d", sub.Dropped())
	}
	if len(byTS) == 0 {
		t.Fatal("empty stream")
	}
	for k, doms := range byTS {
		if len(doms) != 4 {
			t.Fatalf("%v: got %d domains, want 4", k, len(doms))
		}
		g, m := doms[node.DomainGPU], doms[node.DomainMemory]
		mod, nd := doms[node.DomainModule], doms[node.DomainNode]
		if g+m > mod+1e-6 {
			t.Fatalf("%v: gpu %v + memory %v > module %v", k, g, m, mod)
		}
		if mod > nd+1e-6 {
			t.Fatalf("%v: module %v > node %v", k, mod, nd)
		}
		// The stream is live power, not idle filler: module covers at
		// least the GPUs' idle draw.
		if mod <= 0 || nd <= 0 {
			t.Fatalf("%v: nonpositive power", k)
		}
	}
}

// Streaming a run through the sampler must reproduce the trace's
// energy: Σ watts·interval over the stream equals the node trace's
// integral (the exporter's joules counters depend on this).
func TestStreamEnergyMatchesTrace(t *testing.T) {
	bench, _ := workloads.ByName("B.hR105_hse")
	out, err := workloads.Run(workloads.RunSpec{Bench: bench, Nodes: 1, Repeats: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n := out.Nodes[0]
	hub := telemetry.NewHub()
	sub, _ := hub.Subscribe(node.DomainNode, 1<<20)
	s, _ := telemetry.NewSampler(hub, 0.5)
	s.PublishRun(out.Nodes)
	var joules, prevT float64
	for {
		smp, ok := sub.TryNext()
		if !ok {
			break
		}
		joules += smp.Watts * (smp.T - prevT)
		prevT = smp.T
	}
	want := n.TotalTrace().Energy()
	if math.Abs(joules-want) > want*1e-9+1e-6 {
		t.Fatalf("stream energy %v J, trace energy %v J", joules, want)
	}
}
