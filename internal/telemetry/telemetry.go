// Package telemetry is the streaming counterpart to the batch
// monitor→omni pipeline: a backpressure-safe publish/subscribe layer
// over the simulated cluster's power traces. A Sampler walks live node
// traces incrementally (resumable segment cursors, so each poll costs
// only the newly-recorded segments) and publishes per-domain samples
// into a Hub; subscribers read from bounded ring buffers that drop
// their oldest samples when full — a slow consumer loses data, exactly
// like LDMS's real drop process (§II-B), but can never stall the
// sampler or other subscribers.
package telemetry

import (
	"fmt"
	"sync"

	"vasppower/internal/hw/node"
)

// Sample is one power reading on the stream.
type Sample struct {
	Host   string      // node name, e.g. "nid000001"
	Domain node.Domain // NVML-style scope: gpu, memory, module, node
	T      float64     // stream time, seconds (per-host monotone)
	Watts  float64
}

// Hub fans samples out to subscribers. Publish never blocks: each
// subscription owns a bounded ring and absorbs overflow by dropping
// its oldest samples, with drops counted per subscription and in the
// process-wide metrics.
type Hub struct {
	mu   sync.Mutex
	subs []*Subscription
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{} }

// Subscribe registers a new subscriber. domain restricts the stream to
// one scope ("" receives every domain); capacity is the ring size —
// once full, the oldest sample is dropped per new sample. capacity
// must be positive.
func (h *Hub) Subscribe(domain node.Domain, capacity int) (*Subscription, error) {
	return h.SubscribeHost("", domain, capacity)
}

// SubscribeHost registers a subscriber whose ring receives only the
// named host's samples ("" receives every host), on top of the same
// domain scoping Subscribe applies. A host-filtered ring is how a
// per-job consumer (powerd's /v1/telemetry endpoint) follows one
// node's power without paying for — or being drowned out by — the
// rest of the cluster's stream: samples from other hosts are never
// pushed, so they can neither occupy ring slots nor count against
// this subscription's drops.
func (h *Hub) SubscribeHost(host string, domain node.Domain, capacity int) (*Subscription, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("telemetry: subscription capacity %d, want > 0", capacity)
	}
	if domain != "" && !node.ValidDomain(domain) {
		return nil, fmt.Errorf("telemetry: unknown domain scope %q", domain)
	}
	s := &Subscription{hub: h, host: host, domain: domain, buf: make([]Sample, capacity)}
	s.cond = sync.NewCond(&s.mu)
	h.mu.Lock()
	h.subs = append(h.subs, s)
	h.mu.Unlock()
	if m := metrics.Load(); m != nil {
		m.Subscriptions.Inc()
	}
	return s, nil
}

// Publish delivers one sample to every matching subscription. It never
// blocks on a slow subscriber.
func (h *Hub) Publish(smp Sample) {
	h.mu.Lock()
	subs := h.subs
	h.mu.Unlock()
	delivered := false
	for _, s := range subs {
		if (s.domain == "" || s.domain == smp.Domain) &&
			(s.host == "" || s.host == smp.Host) {
			s.push(smp)
			delivered = true
		}
	}
	if m := metrics.Load(); m != nil && delivered {
		m.Published.Inc()
	}
}

// Subscribers returns the number of live (unclosed) subscriptions.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, s := range h.subs {
		if !s.isClosed() {
			n++
		}
	}
	return n
}

// Dropped returns the total samples dropped across all subscriptions,
// including closed ones.
func (h *Hub) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total uint64
	for _, s := range h.subs {
		total += s.Dropped()
	}
	return total
}

// Subscription is one subscriber's bounded view of the stream: a ring
// buffer the hub pushes into and the consumer drains with Next or
// TryNext. All methods are safe for concurrent use.
type Subscription struct {
	hub    *Hub
	host   string
	domain node.Domain

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []Sample // ring storage
	head    int      // index of oldest sample
	n       int      // live samples in buf
	dropped uint64
	closed  bool
}

// Domain returns the subscription's domain scope ("" = all).
func (s *Subscription) Domain() node.Domain { return s.domain }

// Host returns the subscription's host scope ("" = all).
func (s *Subscription) Host() string { return s.host }

// push enqueues one sample, evicting the oldest on overflow. Never
// blocks beyond the (short) critical section.
func (s *Subscription) push(smp Sample) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) { // full: drop oldest
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		if m := metrics.Load(); m != nil {
			m.Dropped.Inc()
		}
	}
	s.buf[(s.head+s.n)%len(s.buf)] = smp
	s.n++
	s.mu.Unlock()
	s.cond.Signal()
}

// Next blocks until a sample is available and returns it, or returns
// ok=false once the subscription is closed and drained.
func (s *Subscription) Next() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.n == 0 {
		return Sample{}, false
	}
	return s.popLocked(), true
}

// TryNext returns the next sample without blocking; ok=false means the
// ring is currently empty (the subscription may still be open).
func (s *Subscription) TryNext() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Sample{}, false
	}
	return s.popLocked(), true
}

func (s *Subscription) popLocked() Sample {
	smp := s.buf[s.head]
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	return smp
}

// Len returns the number of buffered samples.
func (s *Subscription) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many samples this subscriber has lost to
// overflow.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close ends the subscription: publishers stop delivering to it and a
// blocked Next returns once the buffer drains. Idempotent.
func (s *Subscription) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
