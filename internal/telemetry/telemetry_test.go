package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/obs"
)

func TestSubscribeValidation(t *testing.T) {
	h := NewHub()
	if _, err := h.Subscribe("", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := h.Subscribe("board", 8); err == nil {
		t.Fatal("unknown domain accepted")
	}
	if _, err := h.Subscribe(node.DomainGPU, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRingDropsOldest(t *testing.T) {
	h := NewHub()
	sub, err := h.Subscribe("", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Publish(Sample{Host: "n", Domain: node.DomainNode, T: float64(i), Watts: 1})
	}
	if got := sub.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	// The two oldest samples (T=0,1) were evicted.
	for want := 2.0; want < 5; want++ {
		smp, ok := sub.TryNext()
		if !ok || smp.T != want {
			t.Fatalf("got (%v,%v), want sample T=%v", smp.T, ok, want)
		}
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("ring should be drained")
	}
	if got := h.Dropped(); got != 2 {
		t.Fatalf("hub Dropped = %d, want 2", got)
	}
}

func TestDomainScope(t *testing.T) {
	h := NewHub()
	gpuOnly, _ := h.Subscribe(node.DomainGPU, 8)
	all, _ := h.Subscribe("", 8)
	h.Publish(Sample{Host: "n", Domain: node.DomainGPU, T: 1, Watts: 100})
	h.Publish(Sample{Host: "n", Domain: node.DomainNode, T: 1, Watts: 500})
	if got := gpuOnly.Len(); got != 1 {
		t.Fatalf("scoped subscriber buffered %d, want 1", got)
	}
	if got := all.Len(); got != 2 {
		t.Fatalf("unscoped subscriber buffered %d, want 2", got)
	}
	smp, _ := gpuOnly.TryNext()
	if smp.Domain != node.DomainGPU || smp.Watts != 100 {
		t.Fatalf("scoped subscriber got %+v", smp)
	}
}

func TestHostScope(t *testing.T) {
	h := NewHub()
	one, err := h.SubscribeHost("nid000001", "", 8)
	if err != nil {
		t.Fatalf("SubscribeHost: %v", err)
	}
	oneGPU, _ := h.SubscribeHost("nid000001", node.DomainGPU, 8)
	all, _ := h.Subscribe("", 8)
	if one.Host() != "nid000001" || all.Host() != "" {
		t.Fatalf("Host() = %q / %q", one.Host(), all.Host())
	}
	h.Publish(Sample{Host: "nid000001", Domain: node.DomainGPU, T: 1, Watts: 100})
	h.Publish(Sample{Host: "nid000001", Domain: node.DomainNode, T: 1, Watts: 900})
	h.Publish(Sample{Host: "nid000002", Domain: node.DomainGPU, T: 1, Watts: 300})
	h.Publish(Sample{Host: "nid000002", Domain: node.DomainNode, T: 1, Watts: 950})
	if got := one.Len(); got != 2 {
		t.Fatalf("host-scoped subscriber buffered %d, want 2", got)
	}
	if got := oneGPU.Len(); got != 1 {
		t.Fatalf("host+domain-scoped subscriber buffered %d, want 1", got)
	}
	if got := all.Len(); got != 4 {
		t.Fatalf("unscoped subscriber buffered %d, want 4", got)
	}
	// The filtered ring never sees other hosts' samples — drain it
	// fully and check every sample's host.
	for {
		smp, ok := one.TryNext()
		if !ok {
			break
		}
		if smp.Host != "nid000001" {
			t.Fatalf("host-scoped subscriber saw %+v", smp)
		}
	}
	// Other hosts' traffic does not occupy ring slots either: flood
	// with a different host and the scoped ring drops nothing.
	for i := 0; i < 100; i++ {
		h.Publish(Sample{Host: "nid000002", Domain: node.DomainNode, T: float64(i), Watts: 1})
	}
	if got := one.Dropped(); got != 0 {
		t.Fatalf("host-scoped subscriber dropped %d under other-host flood, want 0", got)
	}
}

func TestNextBlocksUntilPublishAndClose(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe("", 4)
	got := make(chan Sample, 1)
	go func() {
		smp, _ := sub.Next()
		got <- smp
	}()
	time.Sleep(10 * time.Millisecond) // let the reader block
	h.Publish(Sample{Host: "n", Domain: node.DomainNode, T: 7, Watts: 1})
	select {
	case smp := <-got:
		if smp.T != 7 {
			t.Fatalf("got T=%v", smp.T)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake on Publish")
	}
	// Close drains remaining samples, then reports !ok.
	h.Publish(Sample{Host: "n", Domain: node.DomainNode, T: 8, Watts: 1})
	sub.Close()
	if smp, ok := sub.Next(); !ok || smp.T != 8 {
		t.Fatalf("close lost the buffered sample: (%v,%v)", smp.T, ok)
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("Next returned ok after close+drain")
	}
	if h.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after close", h.Subscribers())
	}
}

// The core backpressure contract, run under -race in CI: a subscriber
// that sleeps between reads must never stall the publisher — the
// publisher finishes its burst regardless, shedding load as drops.
func TestSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe("", 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := sub.Next(); !ok {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	const n = 50000
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			h.Publish(Sample{Host: "n", Domain: node.DomainNode, T: float64(i), Watts: 1})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publisher stalled behind a slow subscriber")
	}
	sub.Close()
	wg.Wait()
	if sub.Dropped() == 0 {
		t.Fatal("a sleeping subscriber under a 50k burst must drop")
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(NewMetrics(reg))
	defer SetMetrics(nil)
	h := NewHub()
	sub, _ := h.Subscribe("", 2)
	for i := 0; i < 3; i++ {
		h.Publish(Sample{Host: "n", Domain: node.DomainNode, T: float64(i), Watts: 1})
	}
	_ = sub
	snap := reg.Snapshot()
	if snap.Counters["telemetry.published"] != 3 {
		t.Fatalf("published = %d", snap.Counters["telemetry.published"])
	}
	if snap.Counters["telemetry.dropped"] != 1 {
		t.Fatalf("dropped = %d", snap.Counters["telemetry.dropped"])
	}
	if snap.Counters["telemetry.subscriptions"] != 1 {
		t.Fatalf("subscriptions = %d", snap.Counters["telemetry.subscriptions"])
	}
}

func testNode(t *testing.T, name string) *node.Node {
	t.Helper()
	return node.New(name, platform.Default(), nil)
}

func TestSamplerValidation(t *testing.T) {
	h := NewHub()
	if _, err := NewSampler(nil, 1); err == nil {
		t.Fatal("nil hub accepted")
	}
	for _, iv := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewSampler(h, iv); err == nil {
			t.Fatalf("interval %v accepted", iv)
		}
	}
	s, err := NewSampler(h, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n := testNode(t, "nid001")
	if err := s.Register("", n); err == nil {
		t.Fatal("empty host accepted")
	}
	if err := s.Register("nid001", nil); err == nil {
		t.Fatal("nil node accepted")
	}
	if err := s.Register("nid001", n); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("nid001", n); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := s.Unregister("ghost"); err == nil {
		t.Fatal("unknown unregister accepted")
	}
}

func TestSamplerIncrementalPoll(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe("", 1024)
	s, _ := NewSampler(h, 1.0)
	n := testNode(t, "nid001")
	if err := s.Register("nid001", n); err != nil {
		t.Fatal(err)
	}
	n.RecordIdle(2.5)
	if got := s.Poll(); got != 2*4 {
		t.Fatalf("first poll published %d, want 8 (2 windows × 4 domains)", got)
	}
	// The half-window tail is held back until more trace arrives.
	n.RecordIdle(1.5) // total 4.0
	if got := s.Poll(); got != 2*4 {
		t.Fatalf("second poll published %d, want 8", got)
	}
	if got := s.Poll(); got != 0 {
		t.Fatalf("idle poll published %d, want 0", got)
	}
	// Check stream contents: 4 timestamps × 4 domains, in time-major
	// domain-decomposition order, node domain at IdlePower.
	for ti := 1; ti <= 4; ti++ {
		for _, d := range node.Domains() {
			smp, ok := sub.TryNext()
			if !ok {
				t.Fatalf("stream ended early at t=%d %s", ti, d)
			}
			if smp.Host != "nid001" || smp.Domain != d || math.Abs(smp.T-float64(ti)) > 1e-9 {
				t.Fatalf("got %+v, want t=%d domain=%s", smp, ti, d)
			}
			if d == node.DomainNode && math.Abs(smp.Watts-n.IdlePower()) > 1e-6 {
				t.Fatalf("node watts = %v, want idle %v", smp.Watts, n.IdlePower())
			}
		}
	}
}

func TestSamplerUnregisterFlushesTail(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe(node.DomainNode, 64)
	s, _ := NewSampler(h, 1.0)
	n := testNode(t, "nid001")
	_ = s.Register("nid001", n)
	n.RecordIdle(2.5)
	if err := s.Unregister("nid001"); err != nil {
		t.Fatal(err)
	}
	var times []float64
	for {
		smp, ok := sub.TryNext()
		if !ok {
			break
		}
		times = append(times, smp.T)
	}
	want := []float64{1, 2, 2.5}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-9 {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestSamplerClockMonotoneAcrossReregistration(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe(node.DomainNode, 64)
	s, _ := NewSampler(h, 1.0)
	n := testNode(t, "nid001")
	_ = s.Register("nid001", n)
	n.RecordIdle(2)
	_ = s.Unregister("nid001")
	// The next repeat reuses the host name with a fresh trace.
	n.ResetTraces()
	n.RecordIdle(3)
	_ = s.Register("nid001", n)
	_ = s.Unregister("nid001")
	var prev float64
	count := 0
	for {
		smp, ok := sub.TryNext()
		if !ok {
			break
		}
		if smp.T <= prev {
			t.Fatalf("stream time went backwards: %v after %v", smp.T, prev)
		}
		prev = smp.T
		count++
	}
	if count != 5 {
		t.Fatalf("got %d samples, want 5 (t=1..5)", count)
	}
	if math.Abs(prev-5) > 1e-9 {
		t.Fatalf("final stream time = %v, want 5", prev)
	}
}

func TestPublishRunSkipsLiveHosts(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe(node.DomainNode, 256)
	s, _ := NewSampler(h, 1.0)
	live := testNode(t, "nid001")
	_ = s.Register("nid001", live)
	other := testNode(t, "nid002")
	other.RecordIdle(2)
	live.RecordIdle(2)
	s.PublishRun([]*node.Node{live, other, nil})
	// nid001 is being sampled live: PublishRun must not double-publish
	// it (and must not unregister it).
	hosts := map[string]int{}
	for {
		smp, ok := sub.TryNext()
		if !ok {
			break
		}
		hosts[smp.Host]++
	}
	if hosts["nid001"] != 0 {
		t.Fatalf("live host republished %d samples", hosts["nid001"])
	}
	if hosts["nid002"] != 2 {
		t.Fatalf("nid002 published %d, want 2", hosts["nid002"])
	}
	if err := s.Unregister("nid001"); err != nil {
		t.Fatal("PublishRun unregistered the live host")
	}
}

func TestDefaultSink(t *testing.T) {
	if ActiveSink() != nil {
		t.Fatal("default sink should start nil")
	}
	h := NewHub()
	s, _ := NewSampler(h, 1)
	SetDefault(s)
	if ActiveSink() != s {
		t.Fatal("SetDefault did not install")
	}
	SetDefault(nil)
	if ActiveSink() != nil {
		t.Fatal("SetDefault(nil) did not clear")
	}
}

type memStore struct {
	samples map[string][]float64 // host/metric → times
	fail    bool
}

func (m *memStore) InsertSample(host, metric string, tt, v float64) error {
	if m.fail {
		return errFail
	}
	if m.samples == nil {
		m.samples = make(map[string][]float64)
	}
	key := host + "/" + metric
	m.samples[key] = append(m.samples[key], tt)
	return nil
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "store down" }

func TestPumpDrainsIntoStore(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe("", 64)
	st := &memStore{}
	done := make(chan struct{})
	var count int
	var err error
	go func() {
		count, err = Pump(sub, st)
		close(done)
	}()
	h.Publish(Sample{Host: "nid001", Domain: node.DomainGPU, T: 1, Watts: 100})
	h.Publish(Sample{Host: "nid001", Domain: node.DomainMemory, T: 1, Watts: 40})
	sub.Close()
	<-done
	if err != nil || count != 2 {
		t.Fatalf("Pump = (%d, %v)", count, err)
	}
	if len(st.samples["nid001/power.gpu"]) != 1 || len(st.samples["nid001/power.memory"]) != 1 {
		t.Fatalf("store contents = %v", st.samples)
	}
}

func TestPumpSurvivesInsertErrors(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe("", 64)
	st := &memStore{fail: true}
	h.Publish(Sample{Host: "n", Domain: node.DomainGPU, T: 1, Watts: 1})
	h.Publish(Sample{Host: "n", Domain: node.DomainGPU, T: 2, Watts: 1})
	sub.Close()
	count, err := Pump(sub, st)
	if count != 0 || err == nil {
		t.Fatalf("Pump = (%d, %v), want (0, error)", count, err)
	}
}
