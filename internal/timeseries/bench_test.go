package timeseries

import (
	"fmt"
	"testing"

	"vasppower/internal/rng"
)

// Micro-benchmarks for the trace hot path, with the retained
// reference implementations benchmarked alongside so one run yields
// the merge-vs-reference comparison:
//
//	go test -bench 'Sum|Sample' -benchmem ./internal/timeseries
//
// The k=6 trace count mirrors a node's component set (CPU, memory,
// four GPUs), which is the shape every TotalTrace call sums.

var (
	benchTraceSink  *Trace
	benchSeriesSink Series
	benchFloatSink  float64
)

// benchTraces builds k traces of ~n segments each whose boundaries
// rarely coincide — the worst case for breakpoint deduplication.
func benchTraces(k, n int) []*Trace {
	root := rng.New(77)
	out := make([]*Trace, k)
	for i := range out {
		r := root.Split(fmt.Sprintf("trace%d", i))
		tr := &Trace{}
		for j := 0; j < n; j++ {
			tr.Append(0.05+r.Float64()*0.2, 50+float64(r.IntN(300)))
		}
		out[i] = tr
	}
	return out
}

var benchSizes = []int{100, 1000, 10000}

func BenchmarkSum(b *testing.B) {
	for _, n := range benchSizes {
		traces := benchTraces(6, n)
		b.Run(fmt.Sprintf("segs=%d/impl=merge", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchTraceSink = Sum(traces...)
			}
		})
		b.Run(fmt.Sprintf("segs=%d/impl=reference", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchTraceSink = sumReference(traces...)
			}
		})
	}
}

func BenchmarkSample(b *testing.B) {
	// 0.1 s windows over a trace whose mean segment length is 0.175 s:
	// the high-rate Fig. 2 shape where windows and segments interleave.
	const interval = 0.1
	for _, n := range benchSizes {
		tr := benchTraces(1, n)[0]
		b.Run(fmt.Sprintf("segs=%d/impl=cursor", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSeriesSink = tr.Sample(interval)
			}
		})
		b.Run(fmt.Sprintf("segs=%d/impl=reference", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSeriesSink = tr.sampleReference(interval)
			}
		})
	}
}

func BenchmarkSampleInstant(b *testing.B) {
	const interval = 0.1
	for _, n := range benchSizes {
		tr := benchTraces(1, n)[0]
		b.Run(fmt.Sprintf("segs=%d/impl=cursor", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSeriesSink = tr.SampleInstant(interval)
			}
		})
		b.Run(fmt.Sprintf("segs=%d/impl=reference", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSeriesSink = tr.sampleInstantReference(interval)
			}
		})
	}
}

func BenchmarkEnergyBetween(b *testing.B) {
	tr := benchTraces(1, 10000)[0]
	dur := tr.Duration()
	b.Run("impl=search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchFloatSink = tr.EnergyBetween(dur*0.25, dur*0.25+1)
		}
	})
	b.Run("impl=reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchFloatSink = tr.energyBetweenReference(dur*0.25, dur*0.25+1)
		}
	})
}
