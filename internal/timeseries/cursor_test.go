package timeseries

import (
	"testing"

	"vasppower/internal/rng"
)

// Property: a Cursor walking forward returns exactly what the
// stateless MeanBetween returns, for random traces and random
// monotone window sequences.
func TestCursorMatchesMeanBetween(t *testing.T) {
	root := rng.New(404)
	for trial := 0; trial < 50; trial++ {
		r := rng.New(root.Uint64())
		tr := &Trace{}
		for i := 0; i < 40; i++ {
			tr.Append(0.01+r.Float64()*3, r.Float64()*500)
		}
		c := NewCursor(tr)
		a := 0.0
		for a < tr.Duration() {
			b := a + 0.005 + r.Float64()*2
			got, want := c.MeanBetween(a, b), tr.MeanBetween(a, b)
			if !almostEqual(got, want, 1e-9) {
				t.Fatalf("trial %d: cursor mean over [%v,%v] = %v, want %v", trial, a, b, got, want)
			}
			a = b
		}
	}
}

// A cursor survives Appends to its trace: new windows past the old
// end see the new segments without rewinding.
func TestCursorSeesAppendedSegments(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	c := NewCursor(tr)
	if got := c.MeanBetween(0, 2); !almostEqual(got, 100, 1e-12) {
		t.Fatalf("initial mean = %v", got)
	}
	tr.Append(2, 300)
	if got := c.MeanBetween(2, 4); !almostEqual(got, 300, 1e-12) {
		t.Fatalf("post-append mean = %v, want 300", got)
	}
}

// Attach re-targets a cursor at a rebuilt trace (e.g. a memoized
// derived trace invalidated and recomputed); the clamped segment hint
// must never index past the new trace.
func TestCursorAttachRebuiltTrace(t *testing.T) {
	long := &Trace{}
	for i := 0; i < 10; i++ {
		long.Append(1, float64(100+i))
	}
	c := NewCursor(long)
	_ = c.MeanBetween(8, 9) // advance deep into the trace
	short := &Trace{}
	short.Append(3, 50)
	c.Attach(short)
	if got := c.MeanBetween(0, 3); !almostEqual(got, 50, 1e-12) {
		t.Fatalf("mean after Attach = %v, want 50", got)
	}
}

func TestTraceMap(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	tr.Append(3, -40)
	clamped := tr.Map(func(p float64) float64 {
		if p < 0 {
			return 0
		}
		return p
	})
	if got := clamped.Duration(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Map changed duration: %v", got)
	}
	if got := clamped.PowerAt(1); !almostEqual(got, 100, 1e-12) {
		t.Fatalf("Map altered positive segment: %v", got)
	}
	if got := clamped.PowerAt(4); got != 0 {
		t.Fatalf("Map did not clamp negative segment: %v", got)
	}
	// Original untouched.
	if got := tr.PowerAt(4); !almostEqual(got, -40, 1e-12) {
		t.Fatalf("Map mutated receiver: %v", got)
	}
	// Equal mapped powers merge, like any Append.
	flat := tr.Map(func(float64) float64 { return 7 })
	if got := len(flat.Segments()); got != 1 {
		t.Fatalf("mapped-constant trace has %d segments, want 1", got)
	}
}
