package timeseries

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

// Differential harness: the linear-time Sum/Sample/SampleInstant/
// EnergyBetween must agree with the retained reference
// implementations bit for bit — exact float equality, not tolerance —
// on randomized traces. Bit-identity is the property the byte-exact
// -quick golden output rests on, so these tests are deliberately
// stricter than the behavioral property tests.

// genDiffTrace builds one randomized trace for the differential
// harness, covering the shapes the optimized walks special-case:
// empty traces, single segments, equal-power runs (which Append
// merges away), micro-segments near the 1e-12 dedup tolerance, and
// offset-origin traces assembled directly from segments (the
// origin-normalization path in Sum; unreachable through Append, which
// always starts at 0).
func genDiffTrace(r *rng.Stream) *Trace {
	switch r.IntN(8) {
	case 0:
		return &Trace{}
	case 1:
		tr := &Trace{}
		tr.Append(0.1+r.Float64()*5, r.Float64()*400)
		return tr
	case 2:
		at := 0.5 + r.Float64()*3
		n := 1 + r.IntN(5)
		segs := make([]Segment, 0, n)
		for i := 0; i < n; i++ {
			d := 0.05 + r.Float64()*2
			segs = append(segs, Segment{Start: at, Dur: d, Power: r.Float64() * 300})
			at += d
		}
		return &Trace{segs: segs}
	default:
		tr := &Trace{}
		n := 1 + r.IntN(40)
		for i := 0; i < n; i++ {
			var d float64
			if r.IntN(10) == 0 {
				// Micro-segment: boundaries land within the dedup
				// tolerance of their neighbors.
				d = 1e-13 + r.Float64()*2e-12
			} else {
				d = 0.01 + r.Float64()*2
			}
			// A coarse power palette makes equal-power neighbors (and
			// therefore Append merging) common.
			p := float64(r.IntN(6)) * 80
			if r.IntN(3) == 0 {
				p = r.Float64() * 450
			}
			tr.Append(d, p)
		}
		return tr
	}
}

// tracesIdentical reports exact, bitwise segment equality.
func tracesIdentical(a, b *Trace) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, s := range a.segs {
		o := b.segs[i]
		if s.Start != o.Start || s.Dur != o.Dur || s.Power != o.Power {
			return false
		}
	}
	return true
}

// seriesIdentical reports exact, bitwise sample equality.
func seriesIdentical(a, b Series) bool {
	if len(a.Times) != len(b.Times) || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func TestSumMatchesReference(t *testing.T) {
	root := rng.New(1001)
	for iter := 0; iter < 500; iter++ {
		r := rng.New(root.Uint64())
		k := r.IntN(6) // 0..5 traces, including the empty sum
		traces := make([]*Trace, k)
		for i := range traces {
			traces[i] = genDiffTrace(r)
		}
		got := Sum(traces...)
		want := sumReference(traces...)
		if !tracesIdentical(got, want) {
			t.Fatalf("iter %d: Sum diverges from reference\n got: %+v\nwant: %+v",
				iter, got.segs, want.segs)
		}
	}
}

func TestSampleMatchesReference(t *testing.T) {
	root := rng.New(2002)
	for iter := 0; iter < 500; iter++ {
		r := rng.New(root.Uint64())
		tr := genDiffTrace(r)
		interval := 0.05 + r.Float64()*3
		got := tr.Sample(interval)
		want := tr.sampleReference(interval)
		if !seriesIdentical(got, want) {
			t.Fatalf("iter %d: Sample(%v) diverges from reference on %+v",
				iter, interval, tr.segs)
		}
	}
}

func TestSampleInstantMatchesReference(t *testing.T) {
	root := rng.New(3003)
	for iter := 0; iter < 500; iter++ {
		r := rng.New(root.Uint64())
		tr := genDiffTrace(r)
		interval := 0.05 + r.Float64()*3
		got := tr.SampleInstant(interval)
		want := tr.sampleInstantReference(interval)
		if !seriesIdentical(got, want) {
			t.Fatalf("iter %d: SampleInstant(%v) diverges from reference on %+v",
				iter, interval, tr.segs)
		}
	}
}

func TestEnergyBetweenMatchesReference(t *testing.T) {
	root := rng.New(4004)
	for iter := 0; iter < 1000; iter++ {
		r := rng.New(root.Uint64())
		tr := genDiffTrace(r)
		dur := tr.Duration()
		// Windows inside, straddling, and fully outside the trace,
		// plus inverted (b <= a) windows.
		a := -1 + r.Float64()*(dur+2)
		b := a - 0.5 + r.Float64()*(dur+2)
		got := tr.EnergyBetween(a, b)
		want := tr.energyBetweenReference(a, b)
		if got != want {
			t.Fatalf("iter %d: EnergyBetween(%v,%v) = %v, reference %v on %+v",
				iter, a, b, got, want, tr.segs)
		}
	}
}

// TestSumOfSummedIsStillIdentical runs the whole chain the node sensor
// uses — Sum, AddConstant, then Sample — against the reference chain.
func TestSumChainMatchesReference(t *testing.T) {
	root := rng.New(5005)
	for iter := 0; iter < 200; iter++ {
		r := rng.New(root.Uint64())
		traces := make([]*Trace, 1+r.IntN(5))
		for i := range traces {
			traces[i] = genDiffTrace(r)
		}
		offset := r.Float64() * 500
		got := Sum(traces...).AddConstant(offset).Sample(0.5)

		ref := sumReference(traces...)
		shifted := &Trace{}
		for _, s := range ref.segs {
			shifted.Append(s.Dur, s.Power+offset)
		}
		want := shifted.sampleReference(0.5)
		if !seriesIdentical(got, want) {
			t.Fatalf("iter %d: sensor chain diverges from reference", iter)
		}
	}
}

// Property (satellite): the energy of Sample's windows — each value
// times the window length the trace actually covers — sums to the
// exact Trace.Energy() within ulp-scale tolerance. This is the
// integral-preservation guarantee the telemetry model relies on: the
// PM counters accumulate energy between polls, so window means must
// not create or destroy energy.
func TestSampleWindowEnergySumsToTraceEnergy(t *testing.T) {
	root := rng.New(6006)
	for iter := 0; iter < 300; iter++ {
		r := rng.New(root.Uint64())
		tr := genDiffTrace(r)
		if tr.Len() == 0 {
			continue
		}
		interval := 0.05 + r.Float64()*2
		s := tr.Sample(interval)
		if s.Len() == 0 {
			// Trace shorter than the sampler's ceil guard: no windows,
			// nothing to compare (pre-existing sampler behavior).
			continue
		}
		dur := tr.Duration()
		start := tr.segs[0].Start
		var got float64
		for i, tm := range s.Times {
			a := float64(i) * interval
			cov := math.Min(tm, dur) - math.Max(a, start)
			if cov > 0 {
				got += s.Values[i] * cov
			}
		}
		want := tr.Energy()
		// Ulp-scale fp tolerance plus the ≤1e-9·interval tail the
		// sampler's ceil guard may leave uncovered.
		tol := 1e-12*float64(s.Len()+1)*(1+math.Abs(want)) +
			tr.MaxPower()*interval*2e-9
		if math.Abs(got-want) > tol {
			t.Fatalf("iter %d: window energy %v vs exact %v (tol %v, interval %v)",
				iter, got, want, tol, interval)
		}
	}
}
