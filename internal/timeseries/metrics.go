package timeseries

import (
	"sync/atomic"

	"vasppower/internal/obs"
)

// Metrics counts the work of the trace hot path across the process.
// SumSegments is the number of output segments Sum has emitted (the
// unit of the k-way merge's inner loop); Samples is the number of
// samples Sample and SampleInstant have produced. Together they are
// the denominator of "where does a sweep's wall-clock go": every
// figure regenerates by summing component traces and sampling them
// through the telemetry model. Install with SetMetrics; the nil
// default costs one atomic pointer load per call.
type Metrics struct {
	SumSegments *obs.Counter
	Samples     *obs.Counter
}

// NewMetrics registers the trace-pipeline metric set under
// "timeseries." in reg. A nil registry yields a usable all-no-op
// Metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		SumSegments: reg.Counter("timeseries.sum_segments"),
		Samples:     reg.Counter("timeseries.samples"),
	}
}

var metrics atomic.Pointer[Metrics]

// SetMetrics installs (or, with nil, removes) the process-wide trace
// metrics. Install once at startup, before experiments run.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// countSumSegments records n output segments from one Sum call.
func countSumSegments(n int) {
	if m := metrics.Load(); m != nil {
		m.SumSegments.Add(int64(n))
	}
}

// countSamples records n samples emitted by one sampling call.
func countSamples(n int) {
	if m := metrics.Load(); m != nil {
		m.Samples.Add(int64(n))
	}
}
