package timeseries

import (
	"testing"

	"vasppower/internal/obs"
)

func TestMetricsCountSumSegmentsAndSamples(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(NewMetrics(reg))
	defer SetMetrics(nil)

	a := &Trace{}
	a.Append(1, 100)
	a.Append(1, 200)
	b := &Trace{}
	b.Append(1.5, 50)
	sum := Sum(a, b)

	snap := reg.Snapshot()
	if got := snap.Counters["timeseries.sum_segments"]; got != int64(sum.Len()) {
		t.Fatalf("sum_segments = %d, want %d", got, sum.Len())
	}

	win := sum.Sample(0.5)
	inst := sum.SampleInstant(0.5)
	snap = reg.Snapshot()
	want := int64(win.Len() + inst.Len())
	if got := snap.Counters["timeseries.samples"]; got != want {
		t.Fatalf("samples = %d, want %d", got, want)
	}
}

func TestMetricsDetachedIsNoop(t *testing.T) {
	SetMetrics(nil)
	a := &Trace{}
	a.Append(2, 100)
	// Must not panic and must not require a registry.
	_ = Sum(a)
	_ = a.Sample(0.5)
	_ = a.SampleInstant(0.5)
}

func TestNewMetricsNilRegistry(t *testing.T) {
	m := NewMetrics(nil)
	// All-no-op but safe to install and drive.
	SetMetrics(m)
	defer SetMetrics(nil)
	a := &Trace{}
	a.Append(1, 10)
	_ = Sum(a)
	_ = a.Sample(0.25)
}
