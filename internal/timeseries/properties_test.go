package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"vasppower/internal/rng"
)

// Property-based tests on the trace algebra — the foundation every
// power number in the repository rests on.

// genTrace builds a random trace from a seed.
func genTrace(seed uint64, maxSegs int) *Trace {
	r := rng.New(seed)
	tr := &Trace{}
	n := 1 + r.IntN(maxSegs)
	for i := 0; i < n; i++ {
		tr.Append(0.01+r.Float64()*3, r.Float64()*500)
	}
	return tr
}

// Sum is commutative: Sum(a,b) == Sum(b,a) pointwise.
func TestSumCommutativeProperty(t *testing.T) {
	f := func(sa, sb uint64) bool {
		a, b := genTrace(sa, 12), genTrace(sb, 12)
		ab, ba := Sum(a, b), Sum(b, a)
		if math.Abs(ab.Duration()-ba.Duration()) > 1e-9 {
			return false
		}
		for x := 0.0; x < ab.Duration(); x += ab.Duration() / 37 {
			if math.Abs(ab.PowerAt(x)-ba.PowerAt(x)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Sum is associative (up to fp tolerance): Sum(Sum(a,b),c) == Sum(a,b,c).
func TestSumAssociativeProperty(t *testing.T) {
	f := func(sa, sb, sc uint64) bool {
		a, b, c := genTrace(sa, 8), genTrace(sb, 8), genTrace(sc, 8)
		left := Sum(Sum(a, b), c)
		flat := Sum(a, b, c)
		if math.Abs(left.Energy()-flat.Energy()) > 1e-6*(1+flat.Energy()) {
			return false
		}
		for x := 0.0; x < flat.Duration(); x += flat.Duration() / 29 {
			if math.Abs(left.PowerAt(x)-flat.PowerAt(x)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Scaling by k scales energy by k and commutes with Sum.
func TestScaleLinearityProperty(t *testing.T) {
	f := func(sa, sb uint64, kRaw uint8) bool {
		k := 0.1 + float64(kRaw)/64
		a, b := genTrace(sa, 10), genTrace(sb, 10)
		lhs := Sum(a.Scale(k), b.Scale(k))
		rhs := Sum(a, b).Scale(k)
		return math.Abs(lhs.Energy()-rhs.Energy()) <= 1e-6*(1+rhs.Energy())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// EnergyBetween is additive over adjacent windows.
func TestEnergyWindowAdditivityProperty(t *testing.T) {
	f := func(seed uint64, cutRaw uint8) bool {
		tr := genTrace(seed, 15)
		d := tr.Duration()
		cut := d * float64(cutRaw) / 255
		whole := tr.EnergyBetween(0, d)
		parts := tr.EnergyBetween(0, cut) + tr.EnergyBetween(cut, d)
		return math.Abs(whole-parts) <= 1e-6*(1+whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Sampling then trapezoid-integrating approximates the exact energy
// within one sample's worth of error.
func TestSampleEnergyConsistencyProperty(t *testing.T) {
	f := func(seed uint64, ivRaw uint8) bool {
		tr := genTrace(seed, 20)
		interval := 0.05 + float64(ivRaw)/255
		s := tr.Sample(interval)
		if s.Len() < 2 {
			return true
		}
		// Riemann sum of window means over full windows is exact.
		var e float64
		prev := 0.0
		for i, tm := range s.Times {
			e += s.Values[i] * (tm - prev)
			prev = tm
		}
		return math.Abs(e-tr.Energy()) <= 500*interval+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Downsample never invents values outside the original range, at any
// interval.
func TestDownsampleRangeProperty(t *testing.T) {
	f := func(seed uint64, ivRaw uint8) bool {
		tr := genTrace(seed, 20)
		s := tr.Sample(0.1)
		if s.Len() == 0 {
			return true
		}
		d := s.Downsample(0.2 + float64(ivRaw)/50)
		if d.Len() == 0 {
			return true
		}
		return d.Min() >= s.Min()-1e-9 && d.Max() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Shift preserves energy and duration grows by exactly dt.
func TestShiftInvariantsProperty(t *testing.T) {
	f := func(seed uint64, dtRaw uint8) bool {
		tr := genTrace(seed, 10)
		dt := float64(dtRaw) / 16
		sh := tr.Shift(dt)
		return math.Abs(sh.Energy()-tr.Energy()) <= 1e-9 &&
			math.Abs(sh.Duration()-tr.Duration()-dt) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
