package timeseries

import (
	"math"
	"sort"
)

// This file preserves the pre-optimization implementations of the
// trace hot path as unexported reference functions. They are the
// ground truth the differential tests pin the linear-time
// implementations against: new and old must agree bit for bit — the
// same floating-point operations in the same order — because the
// byte-identical -quick golden output survives the rewrite only if
// every intermediate float does.
//
// Complexity of the reference path, for B total segments across k
// traces of up to n segments each, and m samples:
//
//   - sumReference: O(B log B) sort + O(B·k·log n) per-interval
//     binary searches;
//   - sampleReference: O(n·m) — every window rescans every segment;
//   - energyBetweenReference: O(n) per window.

// sumReference is the original Sum: collect every segment boundary,
// sort, deduplicate, then binary-search every input trace once per
// output interval.
func sumReference(traces ...*Trace) *Trace {
	// Collect all breakpoints.
	var points []float64
	for _, tr := range traces {
		for _, s := range tr.segs {
			points = append(points, s.Start, s.End())
		}
	}
	if len(points) == 0 {
		return &Trace{}
	}
	sort.Float64s(points)
	// Deduplicate (within a tiny tolerance to absorb fp noise from
	// repeated accumulation of segment durations).
	const eps = 1e-12
	uniq := points[:1]
	for _, p := range points[1:] {
		if p-uniq[len(uniq)-1] > eps {
			uniq = append(uniq, p)
		}
	}
	out := &Trace{}
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		mid := (a + b) / 2
		var p float64
		for _, tr := range traces {
			if mid >= 0 && mid < tr.Duration() {
				p += tr.PowerAt(mid)
			}
		}
		out.Append(b-a, p)
	}
	// Normalize origin: Sum assumes all traces start at 0; if the first
	// breakpoint is positive, prepend zero power from t=0.
	if len(out.segs) > 0 && uniq[0] > eps {
		shifted := &Trace{}
		shifted.Append(uniq[0], 0)
		for _, s := range out.segs {
			shifted.Append(s.Dur, s.Power)
		}
		return shifted
	}
	return out
}

// energyBetweenReference is the original EnergyBetween, scanning every
// segment of the trace for each window.
func (t *Trace) energyBetweenReference(a, b float64) float64 {
	if b <= a || len(t.segs) == 0 {
		return 0
	}
	var e float64
	for _, s := range t.segs {
		lo := math.Max(a, s.Start)
		hi := math.Min(b, s.End())
		if hi > lo {
			e += s.Power * (hi - lo)
		}
	}
	return e
}

// meanBetweenReference is the original MeanBetween on top of the
// full-scan energy integral.
func (t *Trace) meanBetweenReference(a, b float64) float64 {
	if b <= a || len(t.segs) == 0 {
		return 0
	}
	covLo := math.Max(a, t.segs[0].Start)
	covHi := math.Min(b, t.Duration())
	if covHi <= covLo {
		return 0
	}
	return t.energyBetweenReference(a, b) / (covHi - covLo)
}

// sampleReference is the original Sample: one full MeanBetween scan
// per window.
func (t *Trace) sampleReference(interval float64) Series {
	if interval <= 0 {
		panic("timeseries: non-positive sampling interval")
	}
	dur := t.Duration()
	n := int(math.Ceil(dur/interval - 1e-9))
	s := Series{
		Times:  make([]float64, 0, n),
		Values: make([]float64, 0, n),
	}
	for i := 0; i < n; i++ {
		a := float64(i) * interval
		b := math.Min(a+interval, dur)
		s.Times = append(s.Times, b)
		s.Values = append(s.Values, t.meanBetweenReference(a, b))
	}
	return s
}

// sampleInstantReference is the original SampleInstant: one PowerAt
// binary search per sample, slices grown from nil.
func (t *Trace) sampleInstantReference(interval float64) Series {
	if interval <= 0 {
		panic("timeseries: non-positive sampling interval")
	}
	dur := t.Duration()
	s := Series{}
	for x := interval; x <= dur+1e-9; x += interval {
		s.Times = append(s.Times, x)
		s.Values = append(s.Values, t.PowerAt(math.Min(x, dur)-1e-12))
	}
	return s
}
