package timeseries

import (
	"fmt"
	"math"
	"sort"
)

// Series is a sampled time series: parallel slices of timestamps
// (seconds) and values (watts). Timestamps are strictly increasing.
type Series struct {
	Times  []float64
	Values []float64
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.Values) }

// Validate checks the structural invariants of the series.
func (s Series) Validate() error {
	if len(s.Times) != len(s.Values) {
		return fmt.Errorf("timeseries: %d times but %d values", len(s.Times), len(s.Values))
	}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] <= s.Times[i-1] {
			return fmt.Errorf("timeseries: non-increasing timestamps at index %d (%v then %v)",
				i, s.Times[i-1], s.Times[i])
		}
	}
	return nil
}

// Duration returns the time span covered by the samples (0 for fewer
// than two samples).
func (s Series) Duration() float64 {
	if len(s.Times) < 2 {
		return 0
	}
	return s.Times[len(s.Times)-1] - s.Times[0]
}

// Interval returns the median spacing between consecutive samples,
// which is robust to occasional drops (the paper's nominal 1 s LDMS
// data has an effective 2 s interval because of drops).
func (s Series) Interval() float64 {
	if len(s.Times) < 2 {
		return 0
	}
	gaps := make([]float64, 0, len(s.Times)-1)
	for i := 1; i < len(s.Times); i++ {
		gaps = append(gaps, s.Times[i]-s.Times[i-1])
	}
	sort.Float64s(gaps)
	return gaps[len(gaps)/2]
}

// MaxGap returns the largest spacing between consecutive samples.
func (s Series) MaxGap() float64 {
	var m float64
	for i := 1; i < len(s.Times); i++ {
		if g := s.Times[i] - s.Times[i-1]; g > m {
			m = g
		}
	}
	return m
}

// Min returns the minimum value (NaN for an empty series).
func (s Series) Min() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value (NaN for an empty series).
func (s Series) Max() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (NaN for empty).
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Median returns the median value (NaN for empty).
func (s Series) Median() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	vs := append([]float64(nil), s.Values...)
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// Downsample averages consecutive samples into windows of the given
// interval (seconds), anchored at the first sample's window. This is
// the operation the paper applies to its 0.1 s data to study sampling
// granularity (Fig. 2): window averaging merges nearby power modes and
// widens the high-power mode's FWHM while leaving the mode location
// stable.
func (s Series) Downsample(interval float64) Series {
	if interval <= 0 {
		panic("timeseries: non-positive downsample interval")
	}
	if len(s.Times) == 0 {
		return Series{}
	}
	out := Series{}
	start := s.Times[0]
	var sum float64
	var count int
	windowEnd := start + interval
	flush := func() {
		if count > 0 {
			out.Times = append(out.Times, windowEnd)
			out.Values = append(out.Values, sum/float64(count))
		}
		sum, count = 0, 0
	}
	for i := range s.Times {
		// Half-open windows [windowEnd-interval, windowEnd): a sample
		// landing exactly on a boundary starts the next window.
		for s.Times[i] >= windowEnd-1e-9 {
			flush()
			windowEnd += interval
		}
		sum += s.Values[i]
		count++
	}
	flush()
	return out
}

// Slice returns the sub-series with times in [a, b].
func (s Series) Slice(a, b float64) Series {
	out := Series{}
	for i, t := range s.Times {
		if t >= a && t <= b {
			out.Times = append(out.Times, t)
			out.Values = append(out.Values, s.Values[i])
		}
	}
	return out
}

// ShiftTime returns a copy with dt added to every timestamp.
func (s Series) ShiftTime(dt float64) Series {
	out := Series{
		Times:  make([]float64, len(s.Times)),
		Values: append([]float64(nil), s.Values...),
	}
	for i, t := range s.Times {
		out.Times[i] = t + dt
	}
	return out
}

// Add returns the pointwise sum of two series sampled on the same
// timestamps. It returns an error if the grids differ.
func Add(a, b Series) (Series, error) {
	if len(a.Times) != len(b.Times) {
		return Series{}, fmt.Errorf("timeseries: grids differ in length (%d vs %d)", len(a.Times), len(b.Times))
	}
	out := Series{
		Times:  append([]float64(nil), a.Times...),
		Values: make([]float64, len(a.Values)),
	}
	for i := range a.Times {
		if math.Abs(a.Times[i]-b.Times[i]) > 1e-9 {
			return Series{}, fmt.Errorf("timeseries: grids differ at index %d (%v vs %v)", i, a.Times[i], b.Times[i])
		}
		out.Values[i] = a.Values[i] + b.Values[i]
	}
	return out, nil
}

// Energy estimates the energy under the sampled curve by trapezoidal
// integration, in joules. Requires at least two samples.
func (s Series) Energy() float64 {
	var e float64
	for i := 1; i < len(s.Times); i++ {
		dt := s.Times[i] - s.Times[i-1]
		e += dt * (s.Values[i] + s.Values[i-1]) / 2
	}
	return e
}

// Drop returns a copy of the series with samples removed wherever
// keep(i) reports false. Used by the LDMS drop model.
func (s Series) Drop(keep func(i int) bool) Series {
	out := Series{}
	for i := range s.Times {
		if keep(i) {
			out.Times = append(out.Times, s.Times[i])
			out.Values = append(out.Values, s.Values[i])
		}
	}
	return out
}
