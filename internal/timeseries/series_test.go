package timeseries

import (
	"math"
	"testing"

	"vasppower/internal/rng"
)

func mkSeries(interval float64, vals ...float64) Series {
	s := Series{}
	for i, v := range vals {
		s.Times = append(s.Times, float64(i+1)*interval)
		s.Values = append(s.Values, v)
	}
	return s
}

func TestSeriesValidate(t *testing.T) {
	good := mkSeries(1, 1, 2, 3)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Series{Times: []float64{1, 1}, Values: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-increasing timestamps not rejected")
	}
	mismatch := Series{Times: []float64{1}, Values: []float64{1, 2}}
	if err := mismatch.Validate(); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestSeriesStats(t *testing.T) {
	s := mkSeries(1, 5, 1, 3, 9)
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !almostEqual(s.Mean(), 4.5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !almostEqual(s.Median(), 4, 1e-12) {
		t.Fatalf("median = %v", s.Median())
	}
	odd := mkSeries(1, 5, 1, 3)
	if !almostEqual(odd.Median(), 3, 1e-12) {
		t.Fatalf("odd median = %v", odd.Median())
	}
}

func TestSeriesEmptyStats(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.Median()) {
		t.Fatal("empty series stats should be NaN")
	}
}

func TestIntervalRobustToDrops(t *testing.T) {
	// Nominal 1s sampling with every other sample dropped → median gap 2s.
	s := Series{}
	tm := 0.0
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			tm = float64(i)
			s.Times = append(s.Times, tm)
			s.Values = append(s.Values, 100)
		}
	}
	if got := s.Interval(); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("Interval = %v, want 2", got)
	}
}

func TestMaxGap(t *testing.T) {
	s := Series{Times: []float64{0, 1, 2, 7, 8}, Values: []float64{1, 1, 1, 1, 1}}
	if got := s.MaxGap(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("MaxGap = %v, want 5", got)
	}
}

func TestDownsampleAveragesWindows(t *testing.T) {
	// 0.1s data, downsample to 0.5s: windows of 5 samples.
	s := Series{}
	for i := 1; i <= 10; i++ {
		s.Times = append(s.Times, float64(i)*0.1)
		s.Values = append(s.Values, float64(i))
	}
	d := s.Downsample(0.5)
	if d.Len() != 2 {
		t.Fatalf("downsampled len = %d, want 2", d.Len())
	}
	if !almostEqual(d.Values[0], 3, 1e-9) { // mean of 1..5
		t.Fatalf("first window mean = %v, want 3", d.Values[0])
	}
	if !almostEqual(d.Values[1], 8, 1e-9) { // mean of 6..10
		t.Fatalf("second window mean = %v, want 8", d.Values[1])
	}
}

func TestDownsamplePreservesGrandMean(t *testing.T) {
	st := rng.New(5)
	s := Series{}
	for i := 1; i <= 1000; i++ {
		s.Times = append(s.Times, float64(i)*0.1)
		s.Values = append(s.Values, 100+st.Float64()*200)
	}
	for _, iv := range []float64{0.2, 0.5, 1, 2, 5} {
		d := s.Downsample(iv)
		if err := d.Validate(); err != nil {
			t.Fatalf("interval %v: %v", iv, err)
		}
		// Equal-occupancy windows: grand mean preserved to within the
		// partial-window edge effect.
		if math.Abs(d.Mean()-s.Mean()) > 5 {
			t.Fatalf("interval %v: mean drifted %v -> %v", iv, s.Mean(), d.Mean())
		}
	}
}

func TestDownsampleNarrowsRange(t *testing.T) {
	// Averaging cannot extend the range.
	st := rng.New(9)
	s := Series{}
	for i := 1; i <= 500; i++ {
		s.Times = append(s.Times, float64(i)*0.1)
		s.Values = append(s.Values, st.Float64()*400)
	}
	d := s.Downsample(2)
	if d.Min() < s.Min()-1e-9 || d.Max() > s.Max()+1e-9 {
		t.Fatal("downsampling extended the value range")
	}
	if d.Max()-d.Min() > s.Max()-s.Min() {
		t.Fatal("downsampling widened the range")
	}
}

func TestSlice(t *testing.T) {
	s := mkSeries(1, 10, 20, 30, 40, 50)
	sub := s.Slice(2, 4)
	if sub.Len() != 3 {
		t.Fatalf("slice len = %d, want 3", sub.Len())
	}
	if sub.Values[0] != 20 || sub.Values[2] != 40 {
		t.Fatalf("slice values wrong: %v", sub.Values)
	}
}

func TestShiftTime(t *testing.T) {
	s := mkSeries(1, 1, 2)
	sh := s.ShiftTime(10)
	if sh.Times[0] != 11 || sh.Times[1] != 12 {
		t.Fatalf("shifted times wrong: %v", sh.Times)
	}
	// Original untouched.
	if s.Times[0] != 1 {
		t.Fatal("ShiftTime mutated the receiver")
	}
}

func TestAdd(t *testing.T) {
	a := mkSeries(1, 1, 2, 3)
	b := mkSeries(1, 10, 20, 30)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[2] != 33 {
		t.Fatalf("Add wrong: %v", sum.Values)
	}
	_, err = Add(a, mkSeries(1, 1, 2))
	if err == nil {
		t.Fatal("length mismatch not rejected")
	}
	c := mkSeries(2, 1, 2, 3)
	if _, err := Add(a, c); err == nil {
		t.Fatal("grid mismatch not rejected")
	}
}

func TestSeriesEnergyTrapezoid(t *testing.T) {
	s := mkSeries(1, 100, 100, 100)
	// Two intervals of 1s at 100 W.
	if got := s.Energy(); !almostEqual(got, 200, 1e-9) {
		t.Fatalf("Energy = %v, want 200", got)
	}
}

func TestDrop(t *testing.T) {
	s := mkSeries(1, 1, 2, 3, 4)
	d := s.Drop(func(i int) bool { return i%2 == 0 })
	if d.Len() != 2 || d.Values[0] != 1 || d.Values[1] != 3 {
		t.Fatalf("Drop wrong: %+v", d)
	}
}
