// Package timeseries provides the two time-domain representations used
// throughout the simulator:
//
//   - Trace: an exact, piecewise-constant power signal produced by the
//     hardware models (a kernel draws P watts for d seconds). Traces
//     support exact energy integration and pointwise algebra, which is
//     how a node's total power is assembled from its components.
//
//   - Series: a sampled signal, as a telemetry system like LDMS would
//     record it. Series are produced by sampling a Trace at an interval
//     and support the window-average down-sampling the paper applies to
//     its 0.1 s data (Fig. 2).
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Segment is one constant-power span of a Trace.
type Segment struct {
	Start float64 // seconds since trace origin
	Dur   float64 // seconds, > 0
	Power float64 // watts
}

// End returns the segment's end time.
func (s Segment) End() float64 { return s.Start + s.Dur }

// Trace is a piecewise-constant power signal. Segments are contiguous
// and ordered; gaps are not allowed (append zero-power segments to
// represent idle time). The zero value is an empty trace ready to use.
type Trace struct {
	segs []Segment
}

// ErrEmptyTrace is returned by operations that need at least one segment.
var ErrEmptyTrace = errors.New("timeseries: empty trace")

// Append adds a constant-power span of the given duration to the end of
// the trace. Zero-duration spans are ignored; negative durations panic
// (they indicate a simulator bug).
func (t *Trace) Append(dur, power float64) {
	if dur < 0 {
		panic(fmt.Sprintf("timeseries: negative segment duration %v", dur))
	}
	if dur == 0 {
		return
	}
	start := t.Duration()
	// Merge with the previous segment when power is identical; keeps
	// traces compact when a phase emits many same-power kernels.
	if n := len(t.segs); n > 0 && t.segs[n-1].Power == power {
		t.segs[n-1].Dur += dur
		return
	}
	t.segs = append(t.segs, Segment{Start: start, Dur: dur, Power: power})
}

// Segments returns the underlying segments (not a copy; callers must
// not mutate).
func (t *Trace) Segments() []Segment { return t.segs }

// Reset empties the trace while keeping its segment storage for reuse
// — the arena primitive behind incremental sweeps, where the same
// traces are rebuilt once per cap point. Derived traces previously
// handed out (Sum results, memoized node sensors) are unaffected: they
// own fresh storage.
func (t *Trace) Reset() { t.segs = t.segs[:0] }

// Len returns the number of segments.
func (t *Trace) Len() int { return len(t.segs) }

// Duration returns the total trace duration in seconds.
func (t *Trace) Duration() float64 {
	if len(t.segs) == 0 {
		return 0
	}
	last := t.segs[len(t.segs)-1]
	return last.Start + last.Dur
}

// Energy returns the exact integral of power over time, in joules.
func (t *Trace) Energy() float64 {
	var e float64
	for _, s := range t.segs {
		e += s.Power * s.Dur
	}
	return e
}

// MeanPower returns energy divided by duration, or 0 for an empty trace.
func (t *Trace) MeanPower() float64 {
	d := t.Duration()
	if d == 0 {
		return 0
	}
	return t.Energy() / d
}

// MaxPower returns the maximum segment power (0 for an empty trace).
func (t *Trace) MaxPower() float64 {
	m := 0.0
	for i, s := range t.segs {
		if i == 0 || s.Power > m {
			m = s.Power
		}
	}
	return m
}

// MinPower returns the minimum segment power (0 for an empty trace).
func (t *Trace) MinPower() float64 {
	if len(t.segs) == 0 {
		return 0
	}
	m := t.segs[0].Power
	for _, s := range t.segs[1:] {
		if s.Power < m {
			m = s.Power
		}
	}
	return m
}

// PowerAt returns the power at time x. Times before the trace return
// the first segment's power; times at or beyond the end return the
// last segment's power (a sensor polled "just after" a job sees the
// final state). An empty trace returns 0.
func (t *Trace) PowerAt(x float64) float64 {
	n := len(t.segs)
	if n == 0 {
		return 0
	}
	if x < t.segs[0].Start {
		return t.segs[0].Power
	}
	// Binary search for the segment containing x.
	i := sort.Search(n, func(i int) bool { return t.segs[i].End() > x })
	if i == n {
		return t.segs[n-1].Power
	}
	return t.segs[i].Power
}

// EnergyBetween integrates power over [a, b] exactly. Portions outside
// the trace contribute nothing. Returns 0 if b <= a.
//
// Cost is O(log n + w) for a window overlapping w segments: a binary
// search locates the first segment ending after a, and the scan stops
// at the first segment starting at or after b. Segments outside that
// range contributed nothing to the original full scan, so restricting
// to it leaves the sum — and its floating-point addition order —
// bit-identical (pinned against energyBetweenReference by the
// differential tests).
func (t *Trace) EnergyBetween(a, b float64) float64 {
	if b <= a || len(t.segs) == 0 {
		return 0
	}
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].End() > a })
	var e float64
	for ; i < len(t.segs) && t.segs[i].Start < b; i++ {
		lo := math.Max(a, t.segs[i].Start)
		hi := math.Min(b, t.segs[i].End())
		if hi > lo {
			e += t.segs[i].Power * (hi - lo)
		}
	}
	return e
}

// MeanBetween returns the average power over the window [a, b],
// counting only the portion covered by the trace. Returns 0 when the
// window does not overlap the trace.
func (t *Trace) MeanBetween(a, b float64) float64 {
	if b <= a || len(t.segs) == 0 {
		return 0
	}
	covLo := math.Max(a, t.segs[0].Start)
	covHi := math.Min(b, t.Duration())
	if covHi <= covLo {
		return 0
	}
	return t.EnergyBetween(a, b) / (covHi - covLo)
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{segs: make([]Segment, len(t.segs))}
	copy(c.segs, t.segs)
	return c
}

// Scale returns a new trace with every power value multiplied by k.
func (t *Trace) Scale(k float64) *Trace {
	c := t.Clone()
	for i := range c.segs {
		c.segs[i].Power *= k
	}
	return c
}

// AddConstant returns a new trace with k added to every power value
// (how the node sensor layers the unmetered peripheral draw onto the
// component sum). The result is built through Append into a
// preallocated trace, so adjacent segments whose offset powers round
// to the same value merge exactly as if appended directly.
func (t *Trace) AddConstant(k float64) *Trace {
	return t.AddConstantInto(&Trace{segs: make([]Segment, 0, len(t.segs))}, k)
}

// AddConstantInto is AddConstant into a caller-owned trace, reusing
// dst's segment storage (the sweep engine's arena form). dst is reset
// first and must not be t; values are identical to AddConstant's.
func (t *Trace) AddConstantInto(dst *Trace, k float64) *Trace {
	dst.segs = dst.segs[:0]
	for _, s := range t.segs {
		dst.Append(s.Dur, s.Power+k)
	}
	return dst
}

// Map returns a new trace with every power value replaced by f(power).
// The result is rebuilt through Append, so adjacent segments whose
// mapped powers coincide merge (the same contract as AddConstant).
func (t *Trace) Map(f func(p float64) float64) *Trace {
	c := &Trace{segs: make([]Segment, 0, len(t.segs))}
	for _, s := range t.segs {
		c.Append(s.Dur, f(s.Power))
	}
	return c
}

// Shift returns a new trace whose origin is moved by dt seconds
// (dt >= 0): a zero-power segment of length dt is prepended.
func (t *Trace) Shift(dt float64) *Trace {
	if dt < 0 {
		panic("timeseries: negative shift")
	}
	c := &Trace{}
	if dt > 0 {
		c.Append(dt, 0)
	}
	for _, s := range t.segs {
		c.Append(s.Dur, s.Power)
	}
	return c
}

// sumCursor tracks one non-empty input trace through the k-way merge
// in Sum. bi walks the trace's boundary stream — Start then End of
// each segment, in order, 2n points total — and si walks segments for
// the power lookup (query midpoints are non-decreasing, so si only
// moves forward).
type sumCursor struct {
	segs []Segment
	dur  float64
	bi   int // next boundary index in [0, 2·len(segs)]
	si   int // current segment for power lookups
}

// boundary returns the cursor's next unconsumed breakpoint.
func (c *sumCursor) boundary() float64 {
	if c.bi%2 == 0 {
		return c.segs[c.bi/2].Start
	}
	return c.segs[c.bi/2].End()
}

// Sum returns the pointwise sum of the given traces. Each input is
// treated as zero outside its own duration, so traces of different
// lengths may be summed; the result spans the longest input. The sum
// of zero traces is an empty trace.
//
// Sum is a k-way cursor merge over the inputs' segment boundaries:
// O(B·k) for B total boundaries across k traces, with one output
// allocation, replacing the former global sort (O(B log B)) and the
// per-interval PowerAt binary searches (O(B·k·log n)). Each trace's
// boundary stream is already sorted (segments are contiguous with
// positive durations), so the merged breakpoint sequence is
// value-identical to the old sorted slice, the eps-deduplication sees
// the same values in the same order, and the per-interval power sum
// still adds traces in argument order — every float matches the
// reference bit for bit (pinned by the differential tests against
// sumReference).
func Sum(traces ...*Trace) *Trace {
	return SumInto(&Trace{}, traces...)
}

// SumInto computes Sum(traces...) into dst, reusing dst's segment
// storage across calls — the allocation-free form the incremental
// sweep engine uses to rebuild node sensor traces once per cap point.
// dst is reset first and must not be one of the inputs. The merged
// values are bit-identical to Sum's (it is the same cursor merge).
func SumInto(dst *Trace, traces ...*Trace) *Trace {
	const eps = 1e-12
	// The cursor slice lives on the stack for any realistic component
	// count (a node sums CPU + DDR + a handful of GPUs), keeping the
	// steady-state call allocation-free.
	var cbuf [8]sumCursor
	cursors := cbuf[:0]
	if len(traces) > len(cbuf) {
		cursors = make([]sumCursor, 0, len(traces))
	}
	boundaries := 0
	for _, tr := range traces {
		// Empty traces contribute no breakpoints and no power (their
		// duration is 0); dropping them here preserves the argument
		// order of the remaining traces, and with it the power
		// summation order.
		if len(tr.segs) == 0 {
			continue
		}
		cursors = append(cursors, sumCursor{segs: tr.segs, dur: tr.Duration()})
		boundaries += 2 * len(tr.segs)
	}
	if cap(dst.segs) < boundaries {
		dst.segs = make([]Segment, 0, boundaries)
	} else {
		dst.segs = dst.segs[:0]
	}
	if len(cursors) == 0 {
		return dst
	}
	first := true
	var origin, prev float64
	for {
		// Pull the smallest unconsumed breakpoint. k is small (one
		// cursor per component trace), so a linear scan beats a heap.
		best := -1
		var bv float64
		for i := range cursors {
			c := &cursors[i]
			if c.bi == 2*len(c.segs) {
				continue
			}
			if v := c.boundary(); best < 0 || v < bv {
				best, bv = i, v
			}
		}
		if best < 0 {
			break
		}
		cursors[best].bi++
		if first {
			origin, prev, first = bv, bv, false
			continue
		}
		// Deduplicate against the last kept breakpoint (within a tiny
		// tolerance to absorb fp noise from repeated accumulation of
		// segment durations).
		if bv-prev <= eps {
			continue
		}
		mid := (prev + bv) / 2
		var p float64
		for i := range cursors {
			c := &cursors[i]
			for c.si < len(c.segs) && c.segs[c.si].End() <= mid {
				c.si++
			}
			if mid >= 0 && mid < c.dur {
				if c.si < len(c.segs) {
					p += c.segs[c.si].Power
				} else {
					p += c.segs[len(c.segs)-1].Power
				}
			}
		}
		// Normalize origin: Sum assumes all traces start at 0; if the
		// first breakpoint is positive, lead with zero power from t=0.
		// Appending it lazily, right before the first kept interval,
		// reproduces the historical rebuild exactly: the zero lead-in
		// merges with a zero-power first interval through Append's
		// equal-power merge, and an all-deduplicated merge (no kept
		// intervals) stays empty.
		if len(dst.segs) == 0 && origin > eps {
			dst.Append(origin, 0)
		}
		dst.Append(bv-prev, p)
		prev = bv
	}
	countSumSegments(dst.Len())
	return dst
}

// Concat appends all of src's segments (in order) to dst.
func (t *Trace) Concat(src *Trace) {
	for _, s := range src.segs {
		t.Append(s.Dur, s.Power)
	}
}

// Sample produces a Series by averaging the trace over consecutive
// windows of length interval seconds, timestamping each sample at the
// window end (as a polling sampler would). The final partial window,
// if any, is averaged over the covered portion.
//
// Sampling a whole trace is O(n + m) for n segments and m windows: a
// segment cursor carries across windows instead of every window
// rescanning all segments (O(n·m) before). Values are bit-identical
// to the reference (pinned against sampleReference): segments skipped
// by the cursor contributed +0.0 to each window's energy, so the
// in-order summation over overlapping segments is unchanged.
func (t *Trace) Sample(interval float64) Series {
	if interval <= 0 {
		panic("timeseries: non-positive sampling interval")
	}
	dur := t.Duration()
	n := int(math.Ceil(dur/interval - 1e-9))
	if n < 0 {
		n = 0
	}
	s := Series{
		Times:  make([]float64, 0, n),
		Values: make([]float64, 0, n),
	}
	cur := 0
	for i := 0; i < n; i++ {
		a := float64(i) * interval
		b := math.Min(a+interval, dur)
		s.Times = append(s.Times, b)
		s.Values = append(s.Values, t.meanBetweenFrom(&cur, a, b))
	}
	countSamples(n)
	return s
}

// meanBetweenFrom is MeanBetween with a resumable segment cursor:
// *cur is advanced past segments that end at or before a, so sampling
// consecutive windows visits each segment O(1) times overall (the
// last overlapping segment is re-examined by the next window, which
// amortizes to a constant). Window starts must be non-decreasing
// across calls sharing a cursor. The guard structure and the
// per-segment additions mirror meanBetweenReference exactly.
func (t *Trace) meanBetweenFrom(cur *int, a, b float64) float64 {
	if b <= a || len(t.segs) == 0 {
		return 0
	}
	covLo := math.Max(a, t.segs[0].Start)
	covHi := math.Min(b, t.Duration())
	if covHi <= covLo {
		return 0
	}
	for *cur < len(t.segs) && t.segs[*cur].End() <= a {
		*cur++
	}
	var e float64
	for j := *cur; j < len(t.segs) && t.segs[j].Start < b; j++ {
		lo := math.Max(a, t.segs[j].Start)
		hi := math.Min(b, t.segs[j].End())
		if hi > lo {
			e += t.segs[j].Power * (hi - lo)
		}
	}
	return e / (covHi - covLo)
}

// SampleInstant produces a Series of instantaneous power readings at
// t = interval, 2·interval, ... (decimation rather than averaging).
// Query points are non-decreasing, so a segment cursor replaces the
// per-sample binary search: O(n + m) for the whole trace. Times and
// Values are preallocated with the expected sample count.
func (t *Trace) SampleInstant(interval float64) Series {
	if interval <= 0 {
		panic("timeseries: non-positive sampling interval")
	}
	dur := t.Duration()
	// The loop below accumulates x by interval steps, so it emits
	// floor((dur+1e-9)/interval) samples up to fp accumulation error;
	// the count is used as capacity only.
	n := int((dur + 1e-9) / interval)
	if n < 0 {
		n = 0
	}
	s := Series{
		Times:  make([]float64, 0, n),
		Values: make([]float64, 0, n),
	}
	cur := 0
	for x := interval; x <= dur+1e-9; x += interval {
		s.Times = append(s.Times, x)
		s.Values = append(s.Values, t.powerAtFrom(&cur, math.Min(x, dur)-1e-12))
	}
	countSamples(s.Len())
	return s
}

// Cursor is an exported resumable window reader over a Trace — the
// same segment-cursor walk Sample uses internally, packaged for
// callers that read a growing trace incrementally (the streaming
// telemetry sampler). Successive window starts must be non-decreasing;
// each segment is then visited O(1) times amortized across the whole
// walk instead of O(log n) per window.
//
// A cursor does not own the trace. When the underlying trace is a
// rebuilt derived trace (a node's memoized TotalTrace is recomputed
// after every Record), call Attach with the fresh pointer: as long as
// the new trace extends the old one in time, the saved segment index
// remains a valid starting point because the walk only ever advances
// past segments that end at or before the next window start.
type Cursor struct {
	tr  *Trace
	seg int
}

// NewCursor returns a cursor positioned at the start of tr.
func NewCursor(tr *Trace) *Cursor { return &Cursor{tr: tr} }

// Attach repoints the cursor at a trace that extends the previous one
// (same history, possibly more appended). A shorter trace — which
// violates the contract — degrades to a rescan from the start rather
// than an out-of-range read.
func (c *Cursor) Attach(tr *Trace) {
	if c.seg > len(tr.segs) {
		c.seg = 0
	}
	c.tr = tr
}

// MeanBetween returns the trace's average power over [a, b], counting
// only the covered portion (semantics of Trace.MeanBetween), resuming
// from the cursor's position. Window starts must not decrease across
// calls.
func (c *Cursor) MeanBetween(a, b float64) float64 {
	return c.tr.meanBetweenFrom(&c.seg, a, b)
}

// powerAtFrom is PowerAt with a resumable cursor for non-decreasing
// query points: *cur rests on the first segment ending after the last
// query. Semantics match PowerAt exactly — queries before the first
// segment read its power (cur stays 0), queries at or past the end
// read the last segment's power.
func (t *Trace) powerAtFrom(cur *int, x float64) float64 {
	n := len(t.segs)
	if n == 0 {
		return 0
	}
	for *cur < n && t.segs[*cur].End() <= x {
		*cur++
	}
	if *cur == n {
		return t.segs[n-1].Power
	}
	return t.segs[*cur].Power
}
