// Package timeseries provides the two time-domain representations used
// throughout the simulator:
//
//   - Trace: an exact, piecewise-constant power signal produced by the
//     hardware models (a kernel draws P watts for d seconds). Traces
//     support exact energy integration and pointwise algebra, which is
//     how a node's total power is assembled from its components.
//
//   - Series: a sampled signal, as a telemetry system like LDMS would
//     record it. Series are produced by sampling a Trace at an interval
//     and support the window-average down-sampling the paper applies to
//     its 0.1 s data (Fig. 2).
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Segment is one constant-power span of a Trace.
type Segment struct {
	Start float64 // seconds since trace origin
	Dur   float64 // seconds, > 0
	Power float64 // watts
}

// End returns the segment's end time.
func (s Segment) End() float64 { return s.Start + s.Dur }

// Trace is a piecewise-constant power signal. Segments are contiguous
// and ordered; gaps are not allowed (append zero-power segments to
// represent idle time). The zero value is an empty trace ready to use.
type Trace struct {
	segs []Segment
}

// ErrEmptyTrace is returned by operations that need at least one segment.
var ErrEmptyTrace = errors.New("timeseries: empty trace")

// Append adds a constant-power span of the given duration to the end of
// the trace. Zero-duration spans are ignored; negative durations panic
// (they indicate a simulator bug).
func (t *Trace) Append(dur, power float64) {
	if dur < 0 {
		panic(fmt.Sprintf("timeseries: negative segment duration %v", dur))
	}
	if dur == 0 {
		return
	}
	start := t.Duration()
	// Merge with the previous segment when power is identical; keeps
	// traces compact when a phase emits many same-power kernels.
	if n := len(t.segs); n > 0 && t.segs[n-1].Power == power {
		t.segs[n-1].Dur += dur
		return
	}
	t.segs = append(t.segs, Segment{Start: start, Dur: dur, Power: power})
}

// Segments returns the underlying segments (not a copy; callers must
// not mutate).
func (t *Trace) Segments() []Segment { return t.segs }

// Len returns the number of segments.
func (t *Trace) Len() int { return len(t.segs) }

// Duration returns the total trace duration in seconds.
func (t *Trace) Duration() float64 {
	if len(t.segs) == 0 {
		return 0
	}
	last := t.segs[len(t.segs)-1]
	return last.Start + last.Dur
}

// Energy returns the exact integral of power over time, in joules.
func (t *Trace) Energy() float64 {
	var e float64
	for _, s := range t.segs {
		e += s.Power * s.Dur
	}
	return e
}

// MeanPower returns energy divided by duration, or 0 for an empty trace.
func (t *Trace) MeanPower() float64 {
	d := t.Duration()
	if d == 0 {
		return 0
	}
	return t.Energy() / d
}

// MaxPower returns the maximum segment power (0 for an empty trace).
func (t *Trace) MaxPower() float64 {
	m := 0.0
	for i, s := range t.segs {
		if i == 0 || s.Power > m {
			m = s.Power
		}
	}
	return m
}

// MinPower returns the minimum segment power (0 for an empty trace).
func (t *Trace) MinPower() float64 {
	if len(t.segs) == 0 {
		return 0
	}
	m := t.segs[0].Power
	for _, s := range t.segs[1:] {
		if s.Power < m {
			m = s.Power
		}
	}
	return m
}

// PowerAt returns the power at time x. Times before the trace return
// the first segment's power; times at or beyond the end return the
// last segment's power (a sensor polled "just after" a job sees the
// final state). An empty trace returns 0.
func (t *Trace) PowerAt(x float64) float64 {
	n := len(t.segs)
	if n == 0 {
		return 0
	}
	if x < t.segs[0].Start {
		return t.segs[0].Power
	}
	// Binary search for the segment containing x.
	i := sort.Search(n, func(i int) bool { return t.segs[i].End() > x })
	if i == n {
		return t.segs[n-1].Power
	}
	return t.segs[i].Power
}

// EnergyBetween integrates power over [a, b] exactly. Portions outside
// the trace contribute nothing. Returns 0 if b <= a.
func (t *Trace) EnergyBetween(a, b float64) float64 {
	if b <= a || len(t.segs) == 0 {
		return 0
	}
	var e float64
	for _, s := range t.segs {
		lo := math.Max(a, s.Start)
		hi := math.Min(b, s.End())
		if hi > lo {
			e += s.Power * (hi - lo)
		}
	}
	return e
}

// MeanBetween returns the average power over the window [a, b],
// counting only the portion covered by the trace. Returns 0 when the
// window does not overlap the trace.
func (t *Trace) MeanBetween(a, b float64) float64 {
	if b <= a || len(t.segs) == 0 {
		return 0
	}
	covLo := math.Max(a, t.segs[0].Start)
	covHi := math.Min(b, t.Duration())
	if covHi <= covLo {
		return 0
	}
	return t.EnergyBetween(a, b) / (covHi - covLo)
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{segs: make([]Segment, len(t.segs))}
	copy(c.segs, t.segs)
	return c
}

// Scale returns a new trace with every power value multiplied by k.
func (t *Trace) Scale(k float64) *Trace {
	c := t.Clone()
	for i := range c.segs {
		c.segs[i].Power *= k
	}
	return c
}

// Shift returns a new trace whose origin is moved by dt seconds
// (dt >= 0): a zero-power segment of length dt is prepended.
func (t *Trace) Shift(dt float64) *Trace {
	if dt < 0 {
		panic("timeseries: negative shift")
	}
	c := &Trace{}
	if dt > 0 {
		c.Append(dt, 0)
	}
	for _, s := range t.segs {
		c.Append(s.Dur, s.Power)
	}
	return c
}

// Sum returns the pointwise sum of the given traces. Each input is
// treated as zero outside its own duration, so traces of different
// lengths may be summed; the result spans the longest input. The sum
// of zero traces is an empty trace.
func Sum(traces ...*Trace) *Trace {
	// Collect all breakpoints.
	var points []float64
	for _, tr := range traces {
		for _, s := range tr.segs {
			points = append(points, s.Start, s.End())
		}
	}
	if len(points) == 0 {
		return &Trace{}
	}
	sort.Float64s(points)
	// Deduplicate (within a tiny tolerance to absorb fp noise from
	// repeated accumulation of segment durations).
	const eps = 1e-12
	uniq := points[:1]
	for _, p := range points[1:] {
		if p-uniq[len(uniq)-1] > eps {
			uniq = append(uniq, p)
		}
	}
	out := &Trace{}
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		mid := (a + b) / 2
		var p float64
		for _, tr := range traces {
			if mid >= 0 && mid < tr.Duration() {
				p += tr.PowerAt(mid)
			}
		}
		out.Append(b-a, p)
	}
	// Normalize origin: Sum assumes all traces start at 0; if the first
	// breakpoint is positive, prepend zero power from t=0.
	if len(out.segs) > 0 && uniq[0] > eps {
		shifted := &Trace{}
		shifted.Append(uniq[0], 0)
		for _, s := range out.segs {
			shifted.Append(s.Dur, s.Power)
		}
		return shifted
	}
	// Fix up start times after the merge-on-append optimization.
	return out
}

// Concat appends all of src's segments (in order) to dst.
func (t *Trace) Concat(src *Trace) {
	for _, s := range src.segs {
		t.Append(s.Dur, s.Power)
	}
}

// Sample produces a Series by averaging the trace over consecutive
// windows of length interval seconds, timestamping each sample at the
// window end (as a polling sampler would). The final partial window,
// if any, is averaged over the covered portion.
func (t *Trace) Sample(interval float64) Series {
	if interval <= 0 {
		panic("timeseries: non-positive sampling interval")
	}
	dur := t.Duration()
	n := int(math.Ceil(dur/interval - 1e-9))
	s := Series{
		Times:  make([]float64, 0, n),
		Values: make([]float64, 0, n),
	}
	for i := 0; i < n; i++ {
		a := float64(i) * interval
		b := math.Min(a+interval, dur)
		s.Times = append(s.Times, b)
		s.Values = append(s.Values, t.MeanBetween(a, b))
	}
	return s
}

// SampleInstant produces a Series of instantaneous power readings at
// t = interval, 2·interval, ... (decimation rather than averaging).
func (t *Trace) SampleInstant(interval float64) Series {
	if interval <= 0 {
		panic("timeseries: non-positive sampling interval")
	}
	dur := t.Duration()
	s := Series{}
	for x := interval; x <= dur+1e-9; x += interval {
		s.Times = append(s.Times, x)
		s.Values = append(s.Values, t.PowerAt(math.Min(x, dur)-1e-12))
	}
	return s
}
