package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"vasppower/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAppendAndDuration(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	tr.Append(3, 200)
	if got := tr.Duration(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Duration = %v, want 5", got)
	}
	if got := tr.Energy(); !almostEqual(got, 2*100+3*200, 1e-9) {
		t.Fatalf("Energy = %v, want 800", got)
	}
}

func TestAppendMergesEqualPower(t *testing.T) {
	tr := &Trace{}
	tr.Append(1, 100)
	tr.Append(1, 100)
	tr.Append(1, 200)
	if tr.Len() != 2 {
		t.Fatalf("expected merged segments, got %d", tr.Len())
	}
}

func TestAppendZeroDurationIgnored(t *testing.T) {
	tr := &Trace{}
	tr.Append(0, 100)
	if tr.Len() != 0 {
		t.Fatal("zero-duration segment was stored")
	}
}

func TestAppendNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	(&Trace{}).Append(-1, 0)
}

func TestPowerAt(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	tr.Append(2, 300)
	cases := []struct{ x, want float64 }{
		{-1, 100}, {0, 100}, {1.9, 100}, {2.0, 300}, {3.5, 300}, {4.0, 300}, {10, 300},
	}
	for _, c := range cases {
		if got := tr.PowerAt(c.x); got != c.want {
			t.Errorf("PowerAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEnergyBetween(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	tr.Append(2, 300)
	if got := tr.EnergyBetween(1, 3); !almostEqual(got, 100+300, 1e-9) {
		t.Fatalf("EnergyBetween(1,3) = %v, want 400", got)
	}
	if got := tr.EnergyBetween(3, 1); got != 0 {
		t.Fatalf("EnergyBetween(3,1) = %v, want 0", got)
	}
	if got := tr.EnergyBetween(-5, 100); !almostEqual(got, tr.Energy(), 1e-9) {
		t.Fatalf("EnergyBetween over-wide = %v, want %v", got, tr.Energy())
	}
}

func TestMeanBetween(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	tr.Append(2, 300)
	if got := tr.MeanBetween(0, 4); !almostEqual(got, 200, 1e-9) {
		t.Fatalf("MeanBetween full = %v, want 200", got)
	}
	// Window extends past the trace end: average only over covered part.
	if got := tr.MeanBetween(3, 10); !almostEqual(got, 300, 1e-9) {
		t.Fatalf("MeanBetween(3,10) = %v, want 300", got)
	}
}

func TestMinMaxMeanPower(t *testing.T) {
	tr := &Trace{}
	tr.Append(1, 50)
	tr.Append(3, 250)
	if tr.MinPower() != 50 || tr.MaxPower() != 250 {
		t.Fatalf("min/max = %v/%v", tr.MinPower(), tr.MaxPower())
	}
	want := (50*1 + 250*3) / 4.0
	if !almostEqual(tr.MeanPower(), want, 1e-9) {
		t.Fatalf("MeanPower = %v, want %v", tr.MeanPower(), want)
	}
}

func TestEmptyTraceBehavior(t *testing.T) {
	tr := &Trace{}
	if tr.Duration() != 0 || tr.Energy() != 0 || tr.MeanPower() != 0 {
		t.Fatal("empty trace has non-zero aggregates")
	}
	if tr.PowerAt(1) != 0 {
		t.Fatal("empty trace PowerAt != 0")
	}
}

func TestSumBasic(t *testing.T) {
	a := &Trace{}
	a.Append(2, 100)
	b := &Trace{}
	b.Append(1, 50)
	b.Append(2, 10)
	sum := Sum(a, b)
	if !almostEqual(sum.Duration(), 3, 1e-9) {
		t.Fatalf("sum duration = %v, want 3", sum.Duration())
	}
	if got := sum.PowerAt(0.5); !almostEqual(got, 150, 1e-9) {
		t.Fatalf("sum@0.5 = %v, want 150", got)
	}
	if got := sum.PowerAt(1.5); !almostEqual(got, 110, 1e-9) {
		t.Fatalf("sum@1.5 = %v, want 110", got)
	}
	if got := sum.PowerAt(2.5); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("sum@2.5 = %v, want 10", got)
	}
	if !almostEqual(sum.Energy(), a.Energy()+b.Energy(), 1e-6) {
		t.Fatalf("sum energy %v != %v", sum.Energy(), a.Energy()+b.Energy())
	}
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(); got.Len() != 0 {
		t.Fatal("Sum() of nothing not empty")
	}
	if got := Sum(&Trace{}, &Trace{}); got.Len() != 0 {
		t.Fatal("Sum of empty traces not empty")
	}
}

// Property: energy is additive under Sum for random traces.
func TestSumEnergyAdditiveProperty(t *testing.T) {
	s := rng.New(404)
	f := func(seed uint64) bool {
		st := rng.New(seed)
		mk := func() *Trace {
			tr := &Trace{}
			n := 1 + st.IntN(20)
			for i := 0; i < n; i++ {
				tr.Append(0.01+st.Float64()*5, st.Float64()*400)
			}
			return tr
		}
		a, b, c := mk(), mk(), mk()
		sum := Sum(a, b, c)
		want := a.Energy() + b.Energy() + c.Energy()
		return almostEqual(sum.Energy(), want, 1e-6*(1+want))
	}
	for i := 0; i < 50; i++ {
		if !f(s.Uint64()) {
			t.Fatal("energy not additive under Sum")
		}
	}
}

func TestScaleAndShift(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	sc := tr.Scale(0.5)
	if !almostEqual(sc.Energy(), 100, 1e-9) {
		t.Fatalf("scaled energy = %v, want 100", sc.Energy())
	}
	sh := tr.Shift(3)
	if !almostEqual(sh.Duration(), 5, 1e-9) {
		t.Fatalf("shifted duration = %v, want 5", sh.Duration())
	}
	if sh.PowerAt(1) != 0 || sh.PowerAt(4) != 100 {
		t.Fatal("shifted trace has wrong profile")
	}
	if !almostEqual(sh.Energy(), tr.Energy(), 1e-9) {
		t.Fatal("shift changed energy")
	}
}

func TestConcat(t *testing.T) {
	a := &Trace{}
	a.Append(1, 10)
	b := &Trace{}
	b.Append(2, 20)
	a.Concat(b)
	if !almostEqual(a.Duration(), 3, 1e-12) || !almostEqual(a.Energy(), 50, 1e-9) {
		t.Fatalf("concat wrong: dur=%v energy=%v", a.Duration(), a.Energy())
	}
}

func TestSamplePreservesMeanEnergy(t *testing.T) {
	tr := &Trace{}
	st := rng.New(7)
	for i := 0; i < 50; i++ {
		tr.Append(0.1+st.Float64()*2, st.Float64()*400)
	}
	s := tr.Sample(0.5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Window-averaged samples weighted by window lengths reproduce the
	// exact energy (each full window's mean × interval = window energy).
	var e float64
	prev := 0.0
	for i, tm := range s.Times {
		e += s.Values[i] * (tm - prev)
		prev = tm
	}
	// Final window may be partial; recompute its contribution exactly.
	if !almostEqual(e, tr.Energy(), 1e-6*(1+tr.Energy())+0.5*400) {
		t.Fatalf("sampled energy %v vs exact %v", e, tr.Energy())
	}
}

func TestSampleCount(t *testing.T) {
	tr := &Trace{}
	tr.Append(10, 100)
	s := tr.Sample(2)
	if s.Len() != 5 {
		t.Fatalf("10s trace at 2s interval: %d samples, want 5", s.Len())
	}
	for _, v := range s.Values {
		if !almostEqual(v, 100, 1e-9) {
			t.Fatalf("constant trace sampled to %v", v)
		}
	}
}

func TestSampleInstant(t *testing.T) {
	tr := &Trace{}
	tr.Append(2, 100)
	tr.Append(2, 300)
	s := tr.SampleInstant(1)
	if s.Len() != 4 {
		t.Fatalf("SampleInstant count = %d, want 4", s.Len())
	}
	want := []float64{100, 100, 300, 300}
	for i, v := range s.Values {
		if !almostEqual(v, want[i], 1e-9) {
			t.Fatalf("instant sample %d = %v, want %v", i, v, want[i])
		}
	}
}

// Property: for any random trace, Sample(interval).Validate() passes
// and all sampled values lie within [MinPower, MaxPower].
func TestSampleBoundsProperty(t *testing.T) {
	f := func(seed uint64, k uint8) bool {
		st := rng.New(seed)
		tr := &Trace{}
		n := 1 + st.IntN(30)
		for i := 0; i < n; i++ {
			tr.Append(0.05+st.Float64()*3, 50+st.Float64()*350)
		}
		interval := 0.1 + float64(k%50)/10
		s := tr.Sample(interval)
		if err := s.Validate(); err != nil {
			return false
		}
		lo, hi := tr.MinPower(), tr.MaxPower()
		for _, v := range s.Values {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
