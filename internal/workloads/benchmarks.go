// Package workloads defines the paper's benchmark suite (Table I),
// the silicon-supercell families of §IV, the DGEMM/STREAM burn-in
// microbenchmarks, and the execution protocol (§III-B): five repeats,
// DGEMM+STREAM+idle prelude, minimum-runtime selection.
package workloads

import (
	"fmt"
	"strings"

	"vasppower/internal/dft/incar"
	"vasppower/internal/dft/lattice"
	"vasppower/internal/dft/method"
	"vasppower/internal/dft/parallel"
	"vasppower/internal/hw/platform"
)

// Benchmark is one fully-specified VASP workload.
type Benchmark struct {
	Name        string
	Description string
	Structure   lattice.Structure
	Method      method.Kind
	Functional  string // as Table I names it: HSE, DFT (LDA), DFT (GGA), VDW, ACFDT/RPA
	AlgoName    string // Table I's Algo row
	NELM        int
	NELMDL      int
	NBands      int
	NBandsExact int
	FFTGrid     [3]int
	KPoints     incar.KPoints
	KPar        int
	ENCUT       float64
	// OptimalNodes is the node count "optimizing runtime while
	// remaining above 70% parallel efficiency" used for the
	// power-capping experiments (Figs. 10, 12).
	OptimalNodes int
}

// NPLWV returns the dense grid point count.
func (b Benchmark) NPLWV() int { return lattice.NPLWV(b.FFTGrid) }

// NPW returns the plane waves per band.
func (b Benchmark) NPW() int { return lattice.PlaneWavesPerBand(b.NPLWV()) }

// TableI returns the seven benchmarks with the published parameters
// (electrons/ions, functional, algorithm, NELM, NBANDS, FFT grids,
// NPLWV, and k-point settings all match Table I). The returned slice
// is a fresh copy (Benchmark holds only value fields), so callers may
// reorder or edit theirs.
func TableI() []Benchmark {
	out := make([]Benchmark, len(tableI))
	copy(out, tableI)
	return out
}

// tableI is the memoized table behind TableI, ByName, and Names —
// lookups on the serving path must not rebuild seven Benchmark
// literals per request.
var tableI = buildTableI()

func buildTableI() []Benchmark {
	return []Benchmark{
		{
			Name:        "Si256_hse",
			Description: "256-atom silicon supercell with a vacancy, HSE hybrid functional",
			Structure: lattice.Structure{
				Name: "Si256_vac", Formula: "Si255",
				NumIons: 255, Electrons: 1020,
				A: 17.243, B: 17.243, C: 17.243,
			},
			Method: method.HSE, Functional: "HSE", AlgoName: "CG (Damped)",
			NELM: 41, NBands: 640,
			FFTGrid: [3]int{80, 80, 80},
			KPoints: incar.GammaOnly(), KPar: 1, ENCUT: 410,
			OptimalNodes: 4,
		},
		{
			Name:        "B.hR105_hse",
			Description: "105-atom hexa-boron structure, HSE hybrid functional",
			Structure: lattice.Structure{
				Name: "B.hR105", Formula: "B105",
				NumIons: 105, Electrons: 315,
				A: 10.93, B: 10.93, C: 10.93,
			},
			Method: method.HSE, Functional: "HSE", AlgoName: "CG (Damped)",
			NELM: 17, NBands: 256,
			FFTGrid: [3]int{48, 48, 48},
			KPoints: incar.GammaOnly(), KPar: 1, ENCUT: 320,
			OptimalNodes: 2,
		},
		{
			Name:        "PdO4",
			Description: "348-atom PdO slab, LDA functional, RMM-DIIS",
			Structure: lattice.Structure{
				Name: "PdO4", Formula: "Pd192O156",
				NumIons: 348, Electrons: 3288,
				A: 17.1, B: 25.6, C: 11.5,
			},
			Method: method.DFTRMM, Functional: "DFT (LDA)", AlgoName: "RMM (VeryFast)",
			NELM: 60, NBands: 2048,
			FFTGrid: [3]int{80, 120, 54},
			KPoints: incar.GammaOnly(), KPar: 1, ENCUT: 450,
			OptimalNodes: 2,
		},
		{
			Name:        "PdO2",
			Description: "174-atom PdO slab, LDA functional, RMM-DIIS",
			Structure: lattice.Structure{
				Name: "PdO2", Formula: "Pd96O78",
				NumIons: 174, Electrons: 1644,
				A: 17.1, B: 12.8, C: 11.5,
			},
			Method: method.DFTRMM, Functional: "DFT (LDA)", AlgoName: "RMM (VeryFast)",
			NELM: 60, NBands: 1024,
			FFTGrid: [3]int{80, 60, 54},
			KPoints: incar.GammaOnly(), KPar: 1, ENCUT: 450,
			OptimalNodes: 1,
		},
		{
			Name:        "GaAsBi-64",
			Description: "64-atom GaAsBi ternary alloy, GGA, Davidson+RMM-DIIS",
			Structure: lattice.Structure{
				Name: "GaAsBi-64", Formula: "Ga32As31Bi1",
				NumIons: 64, Electrons: 266,
				A: 11.4, B: 11.4, C: 11.4,
			},
			Method: method.DFTBDRMM, Functional: "DFT (GGA)", AlgoName: "BD+RMM (Fast)",
			NELM: 60, NBands: 192,
			FFTGrid: [3]int{70, 70, 70},
			KPoints: incar.Mesh(4, 4, 4), KPar: 2, ENCUT: 400,
			OptimalNodes: 2,
		},
		{
			Name:        "CuC_vdw",
			Description: "98-atom Cu/C interface with van der Waals corrections",
			Structure: lattice.Structure{
				Name: "CuC_vdw", Formula: "Cu49C49",
				NumIons: 98, Electrons: 1064,
				A: 12.8, B: 12.8, C: 38.4,
			},
			Method: method.VDW, Functional: "VDW", AlgoName: "RMM (VeryFast)",
			NELM: 60, NBands: 640,
			FFTGrid: [3]int{70, 70, 210},
			KPoints: incar.Mesh(3, 3, 1), KPar: 1, ENCUT: 400,
			OptimalNodes: 1,
		},
		{
			Name:        "Si128_acfdtr",
			Description: "128-atom silicon supercell, RPA/ACFDT correlation energy",
			Structure: lattice.Structure{
				Name: "Si128", Formula: "Si128",
				NumIons: 128, Electrons: 512,
				A: 13.685, B: 13.685, C: 13.685,
			},
			Method: method.ACFDTR, Functional: "ACFDT/RPA", AlgoName: "ACFDTR",
			NELM: 14, NBands: 320, NBandsExact: 23506,
			FFTGrid: [3]int{60, 60, 60},
			KPoints: incar.GammaOnly(), KPar: 1, ENCUT: 367,
			OptimalNodes: 2,
		},
	}
}

// ByName returns the Table I benchmark with the given name. It
// allocates nothing — powerd resolves every request through it.
func ByName(name string) (Benchmark, bool) {
	for _, b := range tableI {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns the benchmark names in Table I order.
func Names() []string {
	out := make([]string, len(tableI))
	for i, b := range tableI {
		out[i] = b.Name
	}
	return out
}

// Validate checks internal consistency of a benchmark definition.
func (b Benchmark) Validate() error {
	if err := b.Structure.Validate(); err != nil {
		return fmt.Errorf("workloads %s: %w", b.Name, err)
	}
	switch {
	case b.NELM <= 0:
		return fmt.Errorf("workloads %s: NELM %d", b.Name, b.NELM)
	case b.NBands < b.Structure.Electrons/2:
		return fmt.Errorf("workloads %s: NBANDS %d below occupied %d", b.Name, b.NBands, b.Structure.Electrons/2)
	case b.NPLWV() <= 0:
		return fmt.Errorf("workloads %s: empty FFT grid", b.Name)
	case b.KPar <= 0 || b.KPar > b.KPoints.Reduced():
		return fmt.Errorf("workloads %s: KPAR %d vs %d k-points", b.Name, b.KPar, b.KPoints.Reduced())
	case b.OptimalNodes <= 0:
		return fmt.Errorf("workloads %s: OptimalNodes %d", b.Name, b.OptimalNodes)
	}
	if b.Method == method.ACFDTR && b.NBandsExact <= 0 {
		return fmt.Errorf("workloads %s: ACFDTR needs NBANDSEXACT", b.Name)
	}
	return nil
}

// Config resolves the benchmark into a method configuration and
// decomposition for the given platform and node count (one MPI rank
// per GPU, as the paper's job scripts run).
func (b Benchmark) Config(p platform.Platform, nodes int) (method.Config, error) {
	p = platform.OrDefault(p)
	kpar := b.KPar
	ranks := nodes * p.GPUsPerNode
	// KPAR must divide the rank count; if the configured KPAR cannot,
	// fall back to 1 (what a user would do).
	if ranks%kpar != 0 {
		kpar = 1
	}
	d, err := parallel.Decompose(b.NBands, b.KPoints.Reduced(), nodes, p.GPUsPerNode, kpar)
	if err != nil {
		return method.Config{}, fmt.Errorf("workloads %s @%d nodes: %w", b.Name, nodes, err)
	}
	cfg := method.Config{
		Kind:        b.Method,
		NBands:      b.NBands,
		NPW:         b.NPW(),
		NPLWV:       b.NPLWV(),
		NElectrons:  b.Structure.Electrons,
		NIons:       b.Structure.NumIons,
		NELM:        b.NELM,
		NSim:        4,
		NBandsExact: b.NBandsExact,
		Decomp:      d,
	}
	// A configuration that cannot hold its working set within the
	// platform GPU's HBM is rejected exactly as the real run would
	// crash with an allocation failure.
	hbm := p.GPU.HBMBytes
	if mem := cfg.MemoryPerGPU(); mem > hbm {
		return method.Config{}, fmt.Errorf(
			"workloads %s @%d nodes: %.1f GiB per GPU exceeds the %.0f GiB HBM",
			b.Name, nodes, mem/(1<<30), hbm/(1<<30))
	}
	return cfg, nil
}

// INCAR renders the benchmark as INCAR text (round-trippable through
// the incar parser).
func (b Benchmark) INCAR() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SYSTEM = %s\n", b.Name)
	algo := "Normal"
	switch b.Method {
	case method.DFTRMM, method.VDW:
		algo = "VeryFast"
	case method.DFTBDRMM:
		algo = "Fast"
	case method.DFTCG, method.HSE:
		algo = "Damped"
	case method.ACFDTR:
		algo = "ACFDTR"
	}
	fmt.Fprintf(&sb, "ALGO = %s\n", algo)
	fmt.Fprintf(&sb, "NELM = %d\n", b.NELM)
	fmt.Fprintf(&sb, "NBANDS = %d\n", b.NBands)
	fmt.Fprintf(&sb, "ENCUT = %.1f\n", b.ENCUT)
	fmt.Fprintf(&sb, "KPAR = %d\n", b.KPar)
	if b.Method == method.HSE {
		sb.WriteString("LHFCALC = .TRUE.\nHFSCREEN = 0.2\n")
	}
	if b.Method == method.VDW {
		sb.WriteString("IVDW = 11\n")
	}
	if b.NBandsExact > 0 {
		fmt.Fprintf(&sb, "NBANDSEXACT = %d\n", b.NBandsExact)
	}
	return sb.String()
}

// KPOINTS renders the benchmark's KPOINTS file.
func (b Benchmark) KPOINTS() string {
	return fmt.Sprintf("%s\n0\n%s\n%d %d %d\n0 0 0\n",
		b.Name, b.KPoints.Scheme, b.KPoints.Mesh[0], b.KPoints.Mesh[1], b.KPoints.Mesh[2])
}

// SiliconBenchmark builds a synthetic benchmark around an n-atom
// silicon supercell with the given method — the §IV experiment
// family. ENCUT defaults to the silicon POTCAR value.
func SiliconBenchmark(nAtoms int, kind method.Kind) (Benchmark, error) {
	s, err := lattice.SiliconSupercell(nAtoms)
	if err != nil {
		return Benchmark{}, err
	}
	grid, err := lattice.FFTGrid(s, lattice.SiEncutDefault, "Normal")
	if err != nil {
		return Benchmark{}, err
	}
	b := Benchmark{
		Name:         fmt.Sprintf("Si%d_%s", nAtoms, kind),
		Description:  fmt.Sprintf("synthetic %d-atom silicon supercell, %s", nAtoms, kind),
		Structure:    s,
		Method:       kind,
		Functional:   "DFT",
		AlgoName:     kind.String(),
		NELM:         12,
		NBands:       lattice.DefaultNBands(s.Electrons, s.NumIons, 8),
		FFTGrid:      grid,
		KPoints:      incar.GammaOnly(),
		KPar:         1,
		ENCUT:        lattice.SiEncutDefault,
		OptimalNodes: 1,
	}
	if kind == method.ACFDTR {
		// All plane waves diagonalized exactly.
		b.NBandsExact = b.NPW()
	}
	return b, nil
}
