package workloads

import (
	"strings"
	"testing"

	"vasppower/internal/dft/incar"
	"vasppower/internal/dft/method"
	"vasppower/internal/hw/platform"
)

func TestTableIMatchesPaper(t *testing.T) {
	suite := TableI()
	if len(suite) != 7 {
		t.Fatalf("suite size = %d, want 7", len(suite))
	}
	// Published Table I values.
	want := map[string]struct {
		electrons, ions, nbands, nplwv int
	}{
		"Si256_hse":    {1020, 255, 640, 512000},
		"B.hR105_hse":  {315, 105, 256, 110592},
		"PdO4":         {3288, 348, 2048, 518400},
		"PdO2":         {1644, 174, 1024, 259200},
		"GaAsBi-64":    {266, 64, 192, 343000},
		"CuC_vdw":      {1064, 98, 640, 1029000},
		"Si128_acfdtr": {512, 128, 320, 216000},
	}
	for _, b := range suite {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		w, ok := want[b.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %s", b.Name)
		}
		if b.Structure.Electrons != w.electrons || b.Structure.NumIons != w.ions {
			t.Fatalf("%s: electrons/ions %d/%d, want %d/%d",
				b.Name, b.Structure.Electrons, b.Structure.NumIons, w.electrons, w.ions)
		}
		if b.NBands != w.nbands {
			t.Fatalf("%s: NBANDS %d, want %d", b.Name, b.NBands, w.nbands)
		}
		if b.NPLWV() != w.nplwv {
			t.Fatalf("%s: NPLWV %d, want %d", b.Name, b.NPLWV(), w.nplwv)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("Si256_hse"); !ok {
		t.Fatal("Si256_hse missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown benchmark found")
	}
	names := Names()
	if len(names) != 7 || names[0] != "Si256_hse" {
		t.Fatalf("Names = %v", names)
	}
}

func TestConfigResolvesDecomposition(t *testing.T) {
	b, _ := ByName("GaAsBi-64")
	cfg, err := b.Config(platform.Platform{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// KPAR=2 on 4 ranks: 2 ranks per group, 96 bands each.
	if cfg.Decomp.KPar != 2 || cfg.Decomp.BandsPerRank != 96 {
		t.Fatalf("GaAsBi decomposition wrong: %+v", cfg.Decomp)
	}
	if cfg.NPW != 22295 {
		t.Fatalf("NPW = %d", cfg.NPW)
	}
}

func TestConfigKParFallback(t *testing.T) {
	// 3 nodes → 12 ranks; KPAR=2 divides 12, fine. Construct a case
	// where KPAR cannot divide ranks: KPAR=2 with... all rank counts
	// are multiples of 4, so craft a benchmark with KPAR=3.
	b, _ := ByName("GaAsBi-64")
	b.KPar = 3 // does not divide 4 ranks
	cfg, err := b.Config(platform.Platform{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Decomp.KPar != 1 {
		t.Fatalf("expected KPAR fallback to 1, got %d", cfg.Decomp.KPar)
	}
}

func TestConfigTooManyNodes(t *testing.T) {
	b, _ := ByName("GaAsBi-64") // 192 bands, KPAR 2
	// 128 nodes → 512 ranks → 256 per KPAR group > 192 bands: no
	// valid band distribution.
	if _, err := b.Config(platform.Platform{}, 128); err == nil {
		t.Fatal("absurd node count accepted")
	}
}

func TestINCARRoundTrip(t *testing.T) {
	for _, b := range TableI() {
		f, err := incar.Parse(b.INCAR())
		if err != nil {
			t.Fatalf("%s: INCAR does not parse: %v", b.Name, err)
		}
		p, err := f.TypedParams()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		kind, err := method.FromParams(p)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if kind != b.Method {
			t.Fatalf("%s: INCAR round-trips to %v, want %v", b.Name, kind, b.Method)
		}
		if p.NBands != b.NBands || p.NELM != b.NELM {
			t.Fatalf("%s: INCAR params drifted", b.Name)
		}
	}
}

func TestKPOINTSRoundTrip(t *testing.T) {
	for _, b := range TableI() {
		kp, err := incar.ParseKPoints(b.KPOINTS())
		if err != nil {
			t.Fatalf("%s: KPOINTS does not parse: %v", b.Name, err)
		}
		if kp.Mesh != b.KPoints.Mesh {
			t.Fatalf("%s: mesh drifted: %v vs %v", b.Name, kp.Mesh, b.KPoints.Mesh)
		}
	}
}

func TestSiliconBenchmark(t *testing.T) {
	for _, kind := range method.Kinds() {
		b, err := SiliconBenchmark(128, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !strings.Contains(b.Name, "Si128") {
			t.Fatalf("%v: name %q", kind, b.Name)
		}
		if _, err := b.Config(platform.Platform{}, 1); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
	if _, err := SiliconBenchmark(7, method.DFTRMM); err == nil {
		t.Fatal("odd atom count accepted")
	}
}

func TestBenchmarkValidateRejectsBadDefs(t *testing.T) {
	b, _ := ByName("PdO2")
	cases := []func(*Benchmark){
		func(b *Benchmark) { b.NELM = 0 },
		func(b *Benchmark) { b.NBands = 10 },
		func(b *Benchmark) { b.FFTGrid = [3]int{0, 0, 0} },
		func(b *Benchmark) { b.KPar = 0 },
		func(b *Benchmark) { b.KPar = 5 },
		func(b *Benchmark) { b.OptimalNodes = 0 },
		func(b *Benchmark) { b.Structure.NumIons = 0 },
	}
	for i, mutate := range cases {
		bb := b
		mutate(&bb)
		if err := bb.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	acfdtr, _ := ByName("Si128_acfdtr")
	acfdtr.NBandsExact = 0
	if err := acfdtr.Validate(); err == nil {
		t.Fatal("ACFDTR without NBANDSEXACT accepted")
	}
}

func TestConfigRejectsMemoryOverflow(t *testing.T) {
	// A 4096-atom HSE supercell keeps ~8192 occupied orbitals resident
	// on every GPU: far beyond 40 GB at any node count that the band
	// distribution allows.
	b, err := SiliconBenchmark(4096, method.HSE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Config(platform.Platform{}, 1); err == nil {
		t.Fatal("HSE Si4096 fit in 40 GB?")
	}
	// The same cell under plain DFT fits (bands are distributed).
	bd, err := SiliconBenchmark(4096, method.DFTBD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bd.Config(platform.Platform{}, 1); err != nil {
		t.Fatalf("DFT Si4096 should fit: %v", err)
	}
	// All Table I benchmarks fit at their optimal node counts (they
	// ran on the real machine).
	for _, tb := range TableI() {
		if _, err := tb.Config(platform.Platform{}, tb.OptimalNodes); err != nil {
			t.Fatalf("%s does not fit: %v", tb.Name, err)
		}
	}
}
