package workloads

import (
	"fmt"

	"vasppower/internal/cluster"
	"vasppower/internal/dft/method"
	"vasppower/internal/dft/parallel"
	"vasppower/internal/dft/solver"
	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/platform"
	"vasppower/internal/interconnect"
	"vasppower/internal/rng"
)

// MILC is NERSC's second-largest application by cycles (§VI-B: the
// paper's profiling approach "has been recently applied to NERSC's
// second top application, MILC" [35]). This file models it: lattice
// QCD with staggered fermions — molecular-dynamics trajectories whose
// cost is dominated by conjugate-gradient solves of the fermion
// matrix. The dslash stencil at the heart of CG streams the entire
// lattice with arithmetic intensity below 1 flop/byte, so MILC is
// deeply bandwidth-bound: flat, moderate GPU power (a very different
// signature from VASP's GEMM-heavy hybrids) and high tolerance to GPU
// power caps.
type MILCSpec struct {
	Name string
	// Lattice extents {x, y, z, t}, e.g. {32, 32, 32, 64}.
	Lattice [4]int
	// Trajectories is the number of MD trajectories to run.
	Trajectories int
	// MDSteps is the number of integration steps per trajectory.
	MDSteps int
	// CGIters is the CG iteration count per fermion solve (two solves
	// per MD step: one for the force, one for the action).
	CGIters int
}

// DefaultMILC returns a production-sized run: a 32³×64 lattice, the
// scale of contemporary finite-temperature ensembles.
func DefaultMILC() MILCSpec {
	return MILCSpec{
		Name:         "milc_32c64",
		Lattice:      [4]int{32, 32, 32, 64},
		Trajectories: 3,
		MDSteps:      20,
		CGIters:      600,
	}
}

// Sites returns the lattice volume.
func (m MILCSpec) Sites() int {
	return m.Lattice[0] * m.Lattice[1] * m.Lattice[2] * m.Lattice[3]
}

// Validate checks the spec.
func (m MILCSpec) Validate() error {
	for _, d := range m.Lattice {
		if d < 4 {
			return fmt.Errorf("workloads: MILC lattice extent %d too small", d)
		}
	}
	if m.Trajectories <= 0 || m.MDSteps <= 0 || m.CGIters <= 0 {
		return fmt.Errorf("workloads: MILC %s has empty work", m.Name)
	}
	return nil
}

// Staggered-fermion kernel constants (per lattice site, per dslash
// application): the standard operation/byte counts of the MILC
// su3 codebase.
const (
	milcDslashFlopsPerSite = 1146.0 // naik-improved staggered dslash
	milcDslashBytesPerSite = 1560.0 // gauge links + vectors, fp32/fp64 mix
	milcForceFlopsPerSite  = 4500.0 // gauge + fermion force (SU(3) algebra)
	milcForceBytesPerSite  = 1100.0
	milcHaloBytesPerSite   = 72.0 // surface exchange per MD step (amortized)
)

// milcSchedule builds the step list for a MILC run over the given
// decomposition. The Step vocabulary is shared with the DFT solver —
// the schedule/solver layers are application-agnostic.
func milcSchedule(spec MILCSpec, d parallel.Decomposition) *method.Schedule {
	sitesPerRank := float64(spec.Sites()) / float64(d.Ranks)
	sched := &method.Schedule{Name: spec.Name}
	add := func(s method.Step) { sched.Steps = append(sched.Steps, s) }

	add(method.Step{
		Label: "setup", Kind: method.StepHost, HostSeconds: 2.0,
		MemActivity: 0.2, Phase: "setup",
	})
	for tr := 0; tr < spec.Trajectories; tr++ {
		for st := 0; st < spec.MDSteps; st++ {
			pfx := fmt.Sprintf("tr%02d.md%02d", tr, st)
			// Two CG solves per step, each CGIters applications of the
			// dslash stencil: bandwidth-bound, high occupancy, SMs
			// mostly waiting on HBM.
			cg := float64(2 * spec.CGIters)
			add(method.Step{
				Label: pfx + ".cg-dslash", Kind: method.StepGPU,
				GPU: gpu.Kernel{
					Name:  pfx + ".cg-dslash",
					Class: gpu.ClassStencil,
					Flops: cg * milcDslashFlopsPerSite * sitesPerRank,
					Bytes: cg * milcDslashBytesPerSite * sitesPerRank,
				},
				MemActivity: 0.85, Phase: "cg",
			})
			// Force computation and link update: SU(3) matrix algebra,
			// compute-leaning.
			add(method.Step{
				Label: pfx + ".force", Kind: method.StepGPU,
				GPU: gpu.Kernel{
					Name:  pfx + ".force",
					Class: gpu.ClassSU3Force,
					Flops: milcForceFlopsPerSite * sitesPerRank * 8,
					Bytes: milcForceBytesPerSite * sitesPerRank * 8,
				},
				MemActivity: 0.6, Phase: "force",
			})
			// Halo exchange for the next step.
			add(method.Step{
				Label: pfx + ".halo", Kind: method.StepComm,
				Comm: method.Comm{
					Op:    method.CommAllToAll,
					Bytes: milcHaloBytesPerSite * sitesPerRank * float64(d.Ranks) * float64(spec.CGIters) / 50,
					Scope: method.ScopeAll,
				},
				MemActivity: 0.3, Phase: "comm",
			})
		}
		// Metropolis accept/reject + plaquette measurement on the host.
		add(method.Step{
			Label: fmt.Sprintf("tr%02d.measure", tr), Kind: method.StepHost,
			HostSeconds: 1.5, MemActivity: 0.2, Phase: "measure",
		})
	}
	return sched
}

// MILCRunSpec mirrors RunSpec for the MILC application.
type MILCRunSpec struct {
	Spec MILCSpec
	// Platform selects the hardware; the zero value resolves to the
	// default platform.
	Platform         platform.Platform
	Nodes            int
	GPUPowerLimit    float64
	GPUClockLimitMHz float64
	Repeats          int
	Seed             uint64
	// Workers bounds concurrent repeats, as in RunSpec.
	Workers int
	// OperandEntropy mirrors RunSpec.OperandEntropy: the operand
	// entropy of the lattice data stream (0 = reference).
	OperandEntropy float64
}

// RunMILC executes a MILC measurement run with the same protocol as
// the VASP runs (repeats, min-runtime selection, per-node traces).
func RunMILC(spec MILCRunSpec) (RunOutput, error) {
	if err := spec.Spec.Validate(); err != nil {
		return RunOutput{}, err
	}
	if spec.Nodes <= 0 {
		return RunOutput{}, fmt.Errorf("workloads: node count %d", spec.Nodes)
	}
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	spec.Platform = platform.OrDefault(spec.Platform)
	// MILC decomposes the lattice over ranks; the "bands" level is the
	// per-rank sub-lattice. Reuse the decomposition type with one
	// pseudo-band per site row.
	d, err := parallel.Decompose(spec.Spec.Lattice[3], 1, spec.Nodes, spec.Platform.GPUsPerNode, 1)
	if err != nil {
		return RunOutput{}, err
	}
	sched := milcSchedule(spec.Spec, d)
	if err := stampEntropy(sched, spec.OperandEntropy); err != nil {
		return RunOutput{}, err
	}

	root := rng.New(spec.Seed)
	noises := make([]*rng.Stream, repeats)
	for r := range noises {
		noises[r] = repeatNoise(root, r)
	}

	exec := func(r int) (repeatRun, error) {
		pool := cluster.New(spec.Platform, spec.Nodes, spec.Seed)
		nodes, err := pool.Allocate(spec.Nodes)
		if err != nil {
			return repeatRun{}, err
		}
		if spec.GPUPowerLimit > 0 {
			for _, n := range nodes {
				if err := n.SetGPUPowerLimits(spec.GPUPowerLimit); err != nil {
					return repeatRun{}, err
				}
			}
		}
		if spec.GPUClockLimitMHz > 0 {
			for _, n := range nodes {
				if err := n.SetGPUClockLimits(spec.GPUClockLimitMHz); err != nil {
					return repeatRun{}, err
				}
			}
		}
		job := solver.Job{
			Name:     spec.Spec.Name,
			Schedule: sched,
			Nodes:    nodes,
			Decomp:   d,
			Fabric:   interconnect.Slingshot(),
			Noise:    noises[r],
		}
		run := repeatRun{nodes: nodes, phases: map[string][2]float64{}}
		run.start = nodes[0].TraceDuration()
		res, err := solver.Run(job)
		if err != nil {
			return repeatRun{}, err
		}
		run.end = nodes[0].TraceDuration()
		run.result = res
		return run, nil
	}
	return runRepeats(repeats, spec.Workers, exec)
}
