package workloads

import (
	"testing"

	"vasppower/internal/stats"
)

func TestMILCSpecValidate(t *testing.T) {
	if err := DefaultMILC().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultMILC()
	bad.Lattice[0] = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny lattice accepted")
	}
	bad = DefaultMILC()
	bad.Trajectories = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("empty run accepted")
	}
	if DefaultMILC().Sites() != 32*32*32*64 {
		t.Fatal("sites wrong")
	}
}

func TestRunMILCProfile(t *testing.T) {
	out, err := RunMILC(MILCRunSpec{Spec: DefaultMILC(), Nodes: 1, Repeats: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.BestResult.Runtime <= 0 {
		t.Fatal("no runtime")
	}
	// MILC is bandwidth-bound: flat, moderate GPU power — well below
	// the hybrid-VASP near-TDP regime, well above idle.
	s := out.Nodes[0].GPUTrace(0).Sample(2).Slice(out.VASPStart, out.VASPEnd)
	hm, ok := stats.HighPowerModeOf(s.Values)
	if !ok {
		t.Fatal("no GPU mode")
	}
	if hm.X < 180 || hm.X > 320 {
		t.Fatalf("MILC GPU mode %.0f W, want bandwidth-bound band (180-320)", hm.X)
	}
	// Flat profile: tight interquartile range relative to the mode.
	sum, _ := stats.Describe(s.Values)
	if (sum.Q3-sum.Q1)/hm.X > 0.25 {
		t.Fatalf("MILC profile not flat: IQR %.0f W at mode %.0f W", sum.Q3-sum.Q1, hm.X)
	}
}

func TestMILCCapTolerance(t *testing.T) {
	base, err := RunMILC(MILCRunSpec{Spec: DefaultMILC(), Nodes: 1, Repeats: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunMILC(MILCRunSpec{Spec: DefaultMILC(), Nodes: 1, Repeats: 1, Seed: 7,
		GPUPowerLimit: 200})
	if err != nil {
		t.Fatal(err)
	}
	slow := capped.BestResult.Runtime/base.BestResult.Runtime - 1
	// Bandwidth-bound work tolerates a 50% TDP cap almost for free —
	// the [35] finding for MILC.
	if slow > 0.05 {
		t.Fatalf("MILC slowed %.1f%% at 200 W; should be cap-tolerant", slow*100)
	}
}

func TestMILCScalesWithNodes(t *testing.T) {
	one, err := RunMILC(MILCRunSpec{Spec: DefaultMILC(), Nodes: 1, Repeats: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunMILC(MILCRunSpec{Spec: DefaultMILC(), Nodes: 2, Repeats: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if two.BestResult.Runtime >= one.BestResult.Runtime {
		t.Fatal("MILC did not speed up with nodes")
	}
}

func TestRunMILCValidation(t *testing.T) {
	if _, err := RunMILC(MILCRunSpec{Spec: DefaultMILC(), Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := DefaultMILC()
	bad.MDSteps = 0
	if _, err := RunMILC(MILCRunSpec{Spec: bad, Nodes: 1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := RunMILC(MILCRunSpec{Spec: DefaultMILC(), Nodes: 1, GPUPowerLimit: 10}); err == nil {
		t.Fatal("invalid cap accepted")
	}
}
