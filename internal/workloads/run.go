package workloads

import (
	"context"
	"fmt"

	"vasppower/internal/cluster"
	"vasppower/internal/dft/method"
	"vasppower/internal/dft/solver"
	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/interconnect"
	"vasppower/internal/par"
	"vasppower/internal/rng"
	"vasppower/internal/telemetry"
)

// RunSpec describes one measurement run following the paper's
// protocol (§III-B).
type RunSpec struct {
	Bench Benchmark
	// Platform selects the hardware the run executes on; the zero
	// value resolves to the default platform.
	Platform platform.Platform
	Nodes    int
	// GPUPowerLimit applies a cap to every GPU before the run
	// (0 = the platform GPU's default TDP limit).
	GPUPowerLimit float64
	// GPUClockLimitMHz locks the maximum SM clock on every GPU
	// (0 = unlocked) — the DVFS alternative studied against power
	// capping in §V.
	GPUClockLimitMHz float64
	// Repeats runs VASP this many times and selects the
	// minimum-runtime repeat (the paper uses 5).
	Repeats int
	// Prelude runs DGEMM, STREAM, and an idle window before VASP in
	// the same job, as the paper's job scripts do (Fig. 1).
	Prelude bool
	// Seed drives node variability and run-to-run noise.
	Seed uint64
	// Workers bounds how many repeats run concurrently (0 = one per
	// available CPU, 1 = serial). Every repeat draws its noise from a
	// label-split of Seed and runs on its own identically-seeded node
	// allocation, so results are independent of the worker count.
	Workers int
	// OperandEntropy ∈ [0,1] is the operand entropy of the job's data
	// stream, stamped onto every GPU kernel of the schedule (0 = the
	// platform's reference calibration data). Same work, different
	// data, different watts — the entropy power axis.
	OperandEntropy float64
}

// RunOutput is the result of a measurement run.
type RunOutput struct {
	// Nodes carry the full recorded traces of the selected repeat
	// (prelude + VASP). Each repeat runs on its own allocation of the
	// same simulated hardware, like resubmitting a job script with the
	// same node list.
	Nodes []*node.Node
	// Runtimes per repeat; Best indexes the minimum.
	Runtimes []float64
	Best     int
	// BestResult is the solver result of the selected repeat.
	BestResult solver.Result
	// VASPStart/VASPEnd delimit the selected repeat inside the traces.
	VASPStart, VASPEnd float64
	// PhaseWindows maps prelude phase names ("dgemm", "stream",
	// "idle") and "vasp" (the selected repeat) to their [start, end)
	// windows in trace time. Prelude keys are present only when
	// Prelude was requested.
	PhaseWindows map[string][2]float64
}

// Durations of the prelude phases, seconds.
const (
	dgemmSeconds  = 20.0
	streamSeconds = 20.0
	idleSeconds   = 10.0
)

// repeatRun is one repeat's self-contained execution: its own node
// allocation and traces, its solver result, and the VASP window within
// those traces.
type repeatRun struct {
	nodes      []*node.Node
	result     solver.Result
	start, end float64
	phases     map[string][2]float64
}

// repeatNoise derives the run-to-run noise stream for repeat r.
// Repeat 0 keeps the historical "noise" label, so single-repeat runs
// (every cached measurement in the experiment harness) are
// bit-identical to the pre-parallel engine; later repeats get their
// own labeled streams instead of continuing repeat 0's, which is what
// makes repeats order-independent.
func repeatNoise(root *rng.Stream, r int) *rng.Stream {
	if r == 0 {
		return root.Split("noise")
	}
	return root.Split(fmt.Sprintf("noise/repeat%d", r))
}

// runRepeats executes `repeats` independent repeats through a bounded
// worker pool and assembles the protocol output: results land by
// repeat index (never completion order) and the minimum-runtime
// repeat is selected, per §III-B.
func runRepeats(repeats, workers int, exec func(r int) (repeatRun, error)) (RunOutput, error) {
	runs := make([]repeatRun, repeats)
	err := par.ForEach(context.Background(), par.Workers(workers), repeats,
		func(_ context.Context, r int) error {
			run, err := exec(r)
			if err != nil {
				return err
			}
			runs[r] = run
			return nil
		})
	if err != nil {
		return RunOutput{}, err
	}
	out := RunOutput{PhaseWindows: map[string][2]float64{}}
	for r := range runs {
		out.Runtimes = append(out.Runtimes, runs[r].result.Runtime)
		if out.Runtimes[r] < out.Runtimes[out.Best] {
			out.Best = r
		}
	}
	best := runs[out.Best]
	out.Nodes = best.nodes
	out.BestResult = best.result
	out.VASPStart = best.start
	out.VASPEnd = best.end
	for name, w := range best.phases {
		out.PhaseWindows[name] = w
	}
	out.PhaseWindows["vasp"] = [2]float64{best.start, best.end}
	// Stream the selected repeat's traces into the process-wide
	// telemetry sampler, when one is installed (-telemetry-addr). The
	// sampler never blocks — slow subscribers shed load in their own
	// rings — so this cannot slow a run down.
	if s := telemetry.ActiveSink(); s != nil {
		s.PublishRun(out.Nodes)
	}
	return out, nil
}

// Run executes the spec and returns traces plus the selected repeat.
func Run(spec RunSpec) (RunOutput, error) {
	if err := spec.Bench.Validate(); err != nil {
		return RunOutput{}, err
	}
	if spec.Nodes <= 0 {
		return RunOutput{}, fmt.Errorf("workloads: node count %d", spec.Nodes)
	}
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	spec.Platform = platform.OrDefault(spec.Platform)
	cfg, err := spec.Bench.Config(spec.Platform, spec.Nodes)
	if err != nil {
		return RunOutput{}, err
	}
	sched, err := method.Build(cfg)
	if err != nil {
		return RunOutput{}, err
	}
	if err := stampEntropy(sched, spec.OperandEntropy); err != nil {
		return RunOutput{}, err
	}

	// Derive every repeat's noise stream up front, in index order, from
	// the one root — execution order can then never influence a draw.
	root := rng.New(spec.Seed)
	noises := make([]*rng.Stream, repeats)
	for r := range noises {
		noises[r] = repeatNoise(root, r)
	}

	exec := func(r int) (repeatRun, error) {
		// Allocate from a cluster pool: node identity (and with it the
		// manufacturing variability) is owned by the cluster, exactly as
		// the batch system hands out nodes on the real machine. Each
		// repeat allocates from an identically-seeded pool, so every
		// repeat sees the same simulated hardware.
		pool := cluster.New(spec.Platform, spec.Nodes, spec.Seed)
		nodes, err := pool.Allocate(spec.Nodes)
		if err != nil {
			return repeatRun{}, err
		}
		if spec.GPUPowerLimit > 0 {
			for _, n := range nodes {
				if err := n.SetGPUPowerLimits(spec.GPUPowerLimit); err != nil {
					return repeatRun{}, err
				}
			}
		}
		if spec.GPUClockLimitMHz > 0 {
			for _, n := range nodes {
				if err := n.SetGPUClockLimits(spec.GPUClockLimitMHz); err != nil {
					return repeatRun{}, err
				}
			}
		}
		job := solver.Job{
			Name:     spec.Bench.Name,
			Schedule: sched,
			Nodes:    nodes,
			Decomp:   cfg.Decomp,
			Fabric:   interconnect.Slingshot(),
			Noise:    noises[r],
		}
		run := repeatRun{nodes: nodes, phases: map[string][2]float64{}}
		if spec.Prelude {
			mark := func(name string, do func() error) error {
				start := nodes[0].TraceDuration()
				if err := do(); err != nil {
					return err
				}
				run.phases[name] = [2]float64{start, nodes[0].TraceDuration()}
				return nil
			}
			if err := mark("dgemm", func() error {
				return runMicro(job, DGEMMSchedule(spec.Platform.GPU, dgemmSeconds))
			}); err != nil {
				return repeatRun{}, err
			}
			if err := mark("stream", func() error {
				return runMicro(job, StreamSchedule(spec.Platform.GPU, streamSeconds))
			}); err != nil {
				return repeatRun{}, err
			}
			if err := mark("idle", func() error {
				for _, n := range nodes {
					n.RecordIdle(idleSeconds)
				}
				return nil
			}); err != nil {
				return repeatRun{}, err
			}
		}
		run.start = nodes[0].TraceDuration()
		res, err := solver.Run(job)
		if err != nil {
			return repeatRun{}, err
		}
		run.end = nodes[0].TraceDuration()
		run.result = res
		return run, nil
	}
	return runRepeats(repeats, spec.Workers, exec)
}

// runMicro executes a microbenchmark schedule within the job.
func runMicro(job solver.Job, sched *method.Schedule) error {
	mj := job
	mj.Schedule = sched
	_, err := solver.Run(mj)
	return err
}

// DGEMMSchedule builds the burn-in DGEMM phase for the given GPU: a
// near-peak compute-bound kernel sized to run for about `seconds` at
// full clock. How close to peak it lands is the platform table's
// dgemm-peak response, not a property of the schedule.
func DGEMMSchedule(spec gpu.Spec, seconds float64) *method.Schedule {
	k := gpu.Kernel{
		Name:  "dgemm-burnin",
		Class: gpu.ClassDGEMMPeak,
		Flops: seconds * 0.95 * spec.PeakFlops,
		Bytes: seconds * 0.10 * spec.PeakMemBW,
	}
	return &method.Schedule{
		Name: "dgemm",
		Steps: []method.Step{{
			Label: "dgemm", Kind: method.StepGPU, GPU: k, MemActivity: 0.4, Phase: "dgemm",
		}},
	}
}

// StreamSchedule builds the burn-in STREAM (triad) phase for the
// given GPU: a bandwidth-bound kernel sized for about `seconds` at
// full bandwidth.
func StreamSchedule(spec gpu.Spec, seconds float64) *method.Schedule {
	k := gpu.Kernel{
		Name:  "stream-triad",
		Class: gpu.ClassStreamTriad,
		Flops: seconds * 0.04 * spec.PeakFlops,
		Bytes: seconds * 0.92 * spec.PeakMemBW,
	}
	return &method.Schedule{
		Name: "stream",
		Steps: []method.Step{{
			Label: "stream", Kind: method.StepGPU, GPU: k, MemActivity: 0.95, Phase: "stream",
		}},
	}
}

// stampEntropy writes the run's operand entropy into every GPU work
// descriptor of the schedule. Entropy is a property of the data the
// job streams through the kernels — the same schedule on low-entropy
// inputs draws measurably less dynamic power (the platform table's
// entropy response decides how much). Zero leaves the descriptors at
// the reference calibration.
func stampEntropy(sched *method.Schedule, entropy float64) error {
	if entropy == 0 {
		return nil
	}
	if entropy < 0 || entropy > 1 {
		return fmt.Errorf("workloads: operand entropy %v out of [0,1]", entropy)
	}
	for i := range sched.Steps {
		if sched.Steps[i].Kind == method.StepGPU {
			sched.Steps[i].GPU.Entropy = entropy
		}
	}
	return nil
}
