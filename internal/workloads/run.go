package workloads

import (
	"fmt"

	"vasppower/internal/cluster"
	"vasppower/internal/dft/method"
	"vasppower/internal/dft/solver"
	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/node"
	"vasppower/internal/interconnect"
	"vasppower/internal/rng"
)

// RunSpec describes one measurement run following the paper's
// protocol (§III-B).
type RunSpec struct {
	Bench Benchmark
	Nodes int
	// GPUPowerLimit applies a cap to every GPU before the run
	// (0 = default 400 W).
	GPUPowerLimit float64
	// GPUClockLimitMHz locks the maximum SM clock on every GPU
	// (0 = unlocked) — the DVFS alternative studied against power
	// capping in §V.
	GPUClockLimitMHz float64
	// Repeats runs VASP this many times and selects the
	// minimum-runtime repeat (the paper uses 5).
	Repeats int
	// Prelude runs DGEMM, STREAM, and an idle window before VASP in
	// the same job, as the paper's job scripts do (Fig. 1).
	Prelude bool
	// Seed drives node variability and run-to-run noise.
	Seed uint64
}

// RunOutput is the result of a measurement run.
type RunOutput struct {
	// Nodes carry the full recorded traces (prelude + all repeats).
	Nodes []*node.Node
	// Runtimes per repeat; Best indexes the minimum.
	Runtimes []float64
	Best     int
	// BestResult is the solver result of the selected repeat.
	BestResult solver.Result
	// VASPStart/VASPEnd delimit the selected repeat inside the traces.
	VASPStart, VASPEnd float64
	// PhaseWindows maps prelude phase names ("dgemm", "stream",
	// "idle") and "vasp" (the selected repeat) to their [start, end)
	// windows in trace time. Prelude keys are present only when
	// Prelude was requested.
	PhaseWindows map[string][2]float64
}

// interRepeatGap is the idle time between repeats, seconds.
const interRepeatGap = 3.0

// Durations of the prelude phases, seconds.
const (
	dgemmSeconds  = 20.0
	streamSeconds = 20.0
	idleSeconds   = 10.0
)

// Run executes the spec and returns traces plus the selected repeat.
func Run(spec RunSpec) (RunOutput, error) {
	if err := spec.Bench.Validate(); err != nil {
		return RunOutput{}, err
	}
	if spec.Nodes <= 0 {
		return RunOutput{}, fmt.Errorf("workloads: node count %d", spec.Nodes)
	}
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	cfg, err := spec.Bench.Config(spec.Nodes)
	if err != nil {
		return RunOutput{}, err
	}
	sched, err := method.Build(cfg)
	if err != nil {
		return RunOutput{}, err
	}

	root := rng.New(spec.Seed)
	// Allocate from a cluster pool: node identity (and with it the
	// manufacturing variability) is owned by the cluster, exactly as
	// the batch system hands out nodes on the real machine.
	pool := cluster.New(spec.Nodes, spec.Seed)
	nodes, err := pool.Allocate(spec.Nodes)
	if err != nil {
		return RunOutput{}, err
	}
	if spec.GPUPowerLimit > 0 {
		for _, n := range nodes {
			if err := n.SetGPUPowerLimits(spec.GPUPowerLimit); err != nil {
				return RunOutput{}, err
			}
		}
	}
	if spec.GPUClockLimitMHz > 0 {
		for _, n := range nodes {
			if err := n.SetGPUClockLimits(spec.GPUClockLimitMHz); err != nil {
				return RunOutput{}, err
			}
		}
	}

	job := solver.Job{
		Name:     spec.Bench.Name,
		Schedule: sched,
		Nodes:    nodes,
		Decomp:   cfg.Decomp,
		Fabric:   interconnect.Slingshot(),
		Noise:    root.Split("noise"),
	}

	out := RunOutput{Nodes: nodes, PhaseWindows: map[string][2]float64{}}
	if spec.Prelude {
		mark := func(name string, run func() error) error {
			start := nodes[0].TraceDuration()
			if err := run(); err != nil {
				return err
			}
			out.PhaseWindows[name] = [2]float64{start, nodes[0].TraceDuration()}
			return nil
		}
		if err := mark("dgemm", func() error { return runMicro(job, DGEMMSchedule(dgemmSeconds)) }); err != nil {
			return RunOutput{}, err
		}
		if err := mark("stream", func() error { return runMicro(job, StreamSchedule(streamSeconds)) }); err != nil {
			return RunOutput{}, err
		}
		if err := mark("idle", func() error {
			for _, n := range nodes {
				n.RecordIdle(idleSeconds)
			}
			return nil
		}); err != nil {
			return RunOutput{}, err
		}
	}
	type window struct{ start, end float64 }
	var windows []window
	var results []solver.Result
	for r := 0; r < repeats; r++ {
		start := nodes[0].TraceDuration()
		res, err := solver.Run(job)
		if err != nil {
			return RunOutput{}, err
		}
		end := nodes[0].TraceDuration()
		windows = append(windows, window{start, end})
		results = append(results, res)
		out.Runtimes = append(out.Runtimes, res.Runtime)
		if r != repeats-1 {
			for _, n := range nodes {
				n.RecordIdle(interRepeatGap)
			}
		}
	}
	out.Best = 0
	for i, rt := range out.Runtimes {
		if rt < out.Runtimes[out.Best] {
			out.Best = i
		}
	}
	out.BestResult = results[out.Best]
	out.VASPStart = windows[out.Best].start
	out.VASPEnd = windows[out.Best].end
	out.PhaseWindows["vasp"] = [2]float64{out.VASPStart, out.VASPEnd}
	return out, nil
}

// runMicro executes a microbenchmark schedule within the job.
func runMicro(job solver.Job, sched *method.Schedule) error {
	mj := job
	mj.Schedule = sched
	_, err := solver.Run(mj)
	return err
}

// DGEMMSchedule builds the burn-in DGEMM phase: a near-peak
// compute-bound kernel sized to run for about `seconds` at full clock.
func DGEMMSchedule(seconds float64) *method.Schedule {
	spec := gpu.A100SXM40GB()
	k := gpu.Kernel{
		Name:       "dgemm-burnin",
		Flops:      seconds * 0.95 * spec.PeakFlops,
		Bytes:      seconds * 0.10 * spec.PeakMemBW,
		ComputeOcc: 0.95,
		MemOcc:     0.85,
	}
	return &method.Schedule{
		Name: "dgemm",
		Steps: []method.Step{{
			Label: "dgemm", Kind: method.StepGPU, GPU: k, MemActivity: 0.4, Phase: "dgemm",
		}},
	}
}

// StreamSchedule builds the burn-in STREAM (triad) phase: a
// bandwidth-bound kernel sized for about `seconds` at full bandwidth.
func StreamSchedule(seconds float64) *method.Schedule {
	spec := gpu.A100SXM40GB()
	k := gpu.Kernel{
		Name:       "stream-triad",
		Flops:      seconds * 0.04 * spec.PeakFlops,
		Bytes:      seconds * 0.92 * spec.PeakMemBW,
		ComputeOcc: 0.9,
		MemOcc:     0.92,
		SMActivity: 0.30, // SMs mostly stalled on HBM
	}
	return &method.Schedule{
		Name: "stream",
		Steps: []method.Step{{
			Label: "stream", Kind: method.StepGPU, GPU: k, MemActivity: 0.95, Phase: "stream",
		}},
	}
}
