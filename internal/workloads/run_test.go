package workloads

import (
	"math"
	"testing"

	"vasppower/internal/dft/parallel"
	"vasppower/internal/hw/gpu"
)

func TestRunBasicProtocol(t *testing.T) {
	b, _ := ByName("B.hR105_hse")
	out, err := Run(RunSpec{Bench: b, Nodes: 1, Repeats: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runtimes) != 3 {
		t.Fatalf("runtimes = %d", len(out.Runtimes))
	}
	// Best is the minimum.
	for _, rt := range out.Runtimes {
		if rt < out.Runtimes[out.Best] {
			t.Fatal("Best is not the minimum runtime")
		}
	}
	if out.VASPEnd <= out.VASPStart {
		t.Fatal("empty VASP window")
	}
	if math.Abs((out.VASPEnd-out.VASPStart)-out.Runtimes[out.Best]) > 1e-6 {
		t.Fatal("window does not match best runtime")
	}
	if w, ok := out.PhaseWindows["vasp"]; !ok || w[0] != out.VASPStart {
		t.Fatal("vasp phase window missing")
	}
}

func TestRunRepeatsVary(t *testing.T) {
	b, _ := ByName("B.hR105_hse")
	out, err := Run(RunSpec{Bench: b, Nodes: 1, Repeats: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	allEqual := true
	for _, rt := range out.Runtimes[1:] {
		if rt != out.Runtimes[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("five repeats produced identical runtimes (no jitter)")
	}
	// Jitter is small: spread under 5%.
	lo, hi := out.Runtimes[0], out.Runtimes[0]
	for _, rt := range out.Runtimes {
		lo = math.Min(lo, rt)
		hi = math.Max(hi, rt)
	}
	if (hi-lo)/lo > 0.05 {
		t.Fatalf("runtime spread %.1f%% too large", (hi-lo)/lo*100)
	}
}

func TestRunPreludePhases(t *testing.T) {
	b, _ := ByName("B.hR105_hse")
	out, err := Run(RunSpec{Bench: b, Nodes: 2, Repeats: 1, Prelude: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"dgemm", "stream", "idle", "vasp"} {
		w, ok := out.PhaseWindows[phase]
		if !ok || w[1] <= w[0] {
			t.Fatalf("phase %s window missing or empty", phase)
		}
	}
	// DGEMM runs hot, near the GPU cap; idle sits at node idle power.
	n := out.Nodes[0]
	dg := out.PhaseWindows["dgemm"]
	idle := out.PhaseWindows["idle"]
	dgemmGPU := n.GPUTrace(0).MeanBetween(dg[0], dg[1])
	if dgemmGPU < 350 {
		t.Fatalf("DGEMM GPU power %.0f W, want near TDP", dgemmGPU)
	}
	idleNode := n.TotalTrace().MeanBetween(idle[0], idle[1])
	if idleNode < 390 || idleNode > 530 {
		t.Fatalf("idle node power %.0f W outside published band", idleNode)
	}
}

func TestRunAppliesPowerCap(t *testing.T) {
	b, _ := ByName("B.hR105_hse")
	out, err := Run(RunSpec{Bench: b, Nodes: 1, Repeats: 1, GPUPowerLimit: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if max := out.Nodes[0].GPUTrace(0).MaxPower(); max > 200.01 {
		t.Fatalf("GPU exceeded 200 W cap: %.1f", max)
	}
	if _, err := Run(RunSpec{Bench: b, Nodes: 1, Repeats: 1, GPUPowerLimit: 50}); err == nil {
		t.Fatal("invalid cap accepted")
	}
}

func TestRunValidation(t *testing.T) {
	b, _ := ByName("B.hR105_hse")
	if _, err := Run(RunSpec{Bench: b, Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := b
	bad.NELM = 0
	if _, err := Run(RunSpec{Bench: bad, Nodes: 1}); err == nil {
		t.Fatal("invalid benchmark accepted")
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	b, _ := ByName("B.hR105_hse")
	a, err := Run(RunSpec{Bench: b, Nodes: 1, Repeats: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(RunSpec{Bench: b, Nodes: 1, Repeats: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runtimes {
		if a.Runtimes[i] != c.Runtimes[i] {
			t.Fatal("same seed produced different runtimes")
		}
	}
}

func TestMicroSchedules(t *testing.T) {
	spec := gpu.A100SXM40GB()
	dg := DGEMMSchedule(spec, 10)
	if len(dg.Steps) != 1 || dg.Steps[0].GPU.Flops <= 0 {
		t.Fatal("DGEMM schedule malformed")
	}
	st := StreamSchedule(spec, 10)
	if len(st.Steps) != 1 || st.Steps[0].GPU.Bytes <= 0 {
		t.Fatal("STREAM schedule malformed")
	}
	g := gpu.New(spec, nil, 0, nil, gpu.DefaultVariability())
	dp, err := g.Resolve(dg.Steps[0].GPU)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := g.Resolve(st.Steps[0].GPU)
	if err != nil {
		t.Fatal(err)
	}
	if sp.SMActivity >= dp.ComputeOcc {
		t.Fatal("STREAM should run cooler than DGEMM")
	}
}

// TestMicroAndMILCResolutionPinned pins the default table's resolution
// of every workloads-emitted kernel class to the exact constants the
// schedules carried inline before the efficiency refactor — the
// workloads-side counterpart of dft/method's differential oracle.
func TestMicroAndMILCResolutionPinned(t *testing.T) {
	spec := gpu.A100SXM40GB()
	model := gpu.DefaultEfficiency()
	d, err := parallel.Decompose(DefaultMILC().Lattice[3], 1, 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched := milcSchedule(DefaultMILC(), d)
	var dslash, force gpu.Kernel
	for _, s := range sched.Steps {
		switch {
		case s.Label == "tr00.md00.cg-dslash":
			dslash = s.GPU
		case s.Label == "tr00.md00.force":
			force = s.GPU
		}
	}
	cases := []struct {
		k    gpu.Kernel
		want gpu.ExecProfile
	}{
		{DGEMMSchedule(spec, 10).Steps[0].GPU, gpu.ExecProfile{ComputeOcc: 0.95, MemOcc: 0.85, PowerScale: 1}},
		{StreamSchedule(spec, 10).Steps[0].GPU, gpu.ExecProfile{ComputeOcc: 0.9, MemOcc: 0.92, SMActivity: 0.30, PowerScale: 1}},
		{dslash, gpu.ExecProfile{ComputeOcc: 0.60, MemOcc: 0.75, SMActivity: 0.42, PowerScale: 1}},
		{force, gpu.ExecProfile{ComputeOcc: 0.55, MemOcc: 0.60, SMActivity: 0.62, PowerScale: 1}},
	}
	for _, c := range cases {
		if c.k.Name == "" {
			t.Fatal("pin case kernel not found in schedule")
		}
		got, err := model.Resolve(c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.k.Name, err)
		}
		if got != c.want {
			t.Fatalf("%s resolved %+v, want %+v", c.k.Name, got, c.want)
		}
	}
}
