package workloads

import (
	"fmt"
	"sync/atomic"

	"vasppower/internal/cluster"
	"vasppower/internal/dft/method"
	"vasppower/internal/dft/solver"
	"vasppower/internal/hw/node"
	"vasppower/internal/hw/platform"
	"vasppower/internal/interconnect"
	"vasppower/internal/rng"
	"vasppower/internal/telemetry"
)

// activeSweeps counts live sweep arenas; tests assert it returns to
// zero after cancelled sweeps (the arena-release contract).
var activeSweeps atomic.Int64

// ActiveSweeps returns how many sweep arenas are currently live
// (created by NewSweep and not yet closed).
func ActiveSweeps() int64 { return activeSweeps.Load() }

// Sweep is the incremental measurement engine: the cap-independent
// resolution phase of a RunSpec — schedule construction, entropy
// stamping, kernel resolution through the platform efficiency table,
// node allocation, per-repeat noise stream derivation — done once,
// with only the cap-dependent solve (cap solver + trace recording)
// re-run per point. Node power traces are rebuilt in a reusable arena:
// reset between repeats and points instead of reallocated, so a
// P-point sweep costs O(schedule) resolution plus O(P) solves.
//
// Every point is bit-identical to an independent Run of the same spec
// with that point's cap or clock limit: each repeat draws from a value
// snapshot of the same labeled noise stream, the single node
// allocation is identical to the per-repeat allocations (same platform
// + seed), and the prepared solver replicates the oracle's arithmetic
// exactly (pinned by the differential tests).
//
// A Sweep is not safe for concurrent use. The RunOutput of a Run*
// call — its nodes' traces, runtimes slice, result map, and phase
// windows — is valid only until the next Run* or Close call.
type Sweep struct {
	spec    RunSpec
	repeats int
	pool    *cluster.Cluster
	nodes   []*node.Node
	prep    *solver.Prepared

	// noises holds each repeat's initial noise-stream state by value; a
	// scratch copy per run gives every point the exact draws an
	// independent run would see.
	noises  []rng.Stream
	scratch rng.Stream

	banks     []node.TraceBank // best repeat's traces during the loop
	runtimes  []float64
	bestRes   solver.Result
	bestPhase map[string]float64
	windows   map[string][2]float64
	closed    bool
}

// NewSweep performs the cap-independent resolution phase for spec.
// The spec must not request the prelude protocol or carry its own
// cap/clock limits (those are per-point: RunCap, RunClockMHz), and
// the sweep engine is unavailable while a telemetry sink is active —
// the sink streams from trace cursors asynchronously, which arena
// reuse would corrupt. Callers fall back to the per-point oracle
// (Run) on error.
func NewSweep(spec RunSpec) (*Sweep, error) {
	if telemetry.ActiveSink() != nil {
		return nil, fmt.Errorf("workloads: sweep engine unavailable while a telemetry sink is active")
	}
	if spec.Prelude {
		return nil, fmt.Errorf("workloads: sweep engine does not support the prelude protocol")
	}
	if spec.GPUPowerLimit != 0 || spec.GPUClockLimitMHz != 0 {
		return nil, fmt.Errorf("workloads: sweep specs carry no cap/clock limits (set them per point)")
	}
	if err := spec.Bench.Validate(); err != nil {
		return nil, err
	}
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("workloads: node count %d", spec.Nodes)
	}
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	spec.Platform = platform.OrDefault(spec.Platform)
	cfg, err := spec.Bench.Config(spec.Platform, spec.Nodes)
	if err != nil {
		return nil, err
	}
	sched, err := method.Build(cfg)
	if err != nil {
		return nil, err
	}
	if err := stampEntropy(sched, spec.OperandEntropy); err != nil {
		return nil, err
	}

	// Snapshot every repeat's noise stream in index order from the one
	// root, exactly as Run derives them; Split never advances the
	// parent, so the snapshots equal the streams an independent run
	// would construct.
	root := rng.New(spec.Seed)
	noises := make([]rng.Stream, repeats)
	for r := range noises {
		noises[r] = *repeatNoise(root, r)
	}

	// One allocation serves every repeat and point: each oracle repeat
	// allocates from an identically-seeded pool, so the hardware is the
	// same by construction.
	pool := cluster.New(spec.Platform, spec.Nodes, spec.Seed)
	nodes, err := pool.Allocate(spec.Nodes)
	if err != nil {
		return nil, err
	}
	prep, err := solver.Prepare(solver.Job{
		Name:     spec.Bench.Name,
		Schedule: sched,
		Nodes:    nodes,
		Decomp:   cfg.Decomp,
		Fabric:   interconnect.Slingshot(),
	})
	if err != nil {
		pool.Release(nodes)
		return nil, err
	}
	s := &Sweep{
		spec:      spec,
		repeats:   repeats,
		pool:      pool,
		nodes:     nodes,
		prep:      prep,
		noises:    noises,
		banks:     make([]node.TraceBank, len(nodes)),
		runtimes:  make([]float64, repeats),
		bestPhase: make(map[string]float64, 8),
		windows:   make(map[string][2]float64, 1),
	}
	activeSweeps.Add(1)
	return s, nil
}

// UniqueKernels reports how many distinct GPU work descriptors the
// schedule resolved to — the per-point cap-solve cost scales with this
// rather than the step count.
func (s *Sweep) UniqueKernels() int { return s.prep.Kernels() }

// RunCap measures one cap point: every GPU capped at capW watts
// (capW <= 0 = the default TDP limit), clocks unlocked. Equivalent to
// Run with GPUPowerLimit: capW.
func (s *Sweep) RunCap(capW float64) (RunOutput, error) {
	if s.closed {
		return RunOutput{}, fmt.Errorf("workloads: sweep is closed")
	}
	if err := s.prep.SetGPUClockLimitMHz(0); err != nil {
		return RunOutput{}, err
	}
	if err := s.prep.SetGPUPowerLimit(capW); err != nil {
		return RunOutput{}, err
	}
	return s.run()
}

// RunClockMHz measures one DVFS point: every GPU's SM clock locked to
// mhz (mhz <= 0 = unlocked), power limit at the default. Equivalent to
// Run with GPUClockLimitMHz: mhz.
func (s *Sweep) RunClockMHz(mhz float64) (RunOutput, error) {
	if s.closed {
		return RunOutput{}, fmt.Errorf("workloads: sweep is closed")
	}
	if err := s.prep.SetGPUPowerLimit(0); err != nil {
		return RunOutput{}, err
	}
	if err := s.prep.SetGPUClockLimitMHz(mhz); err != nil {
		return RunOutput{}, err
	}
	return s.run()
}

// run executes the repeat protocol against the frozen context: reset
// the arena, replay each repeat's noise snapshot, keep the best
// (minimum-runtime, lowest index on ties) repeat's traces via O(1)
// bank swaps.
func (s *Sweep) run() (RunOutput, error) {
	best := 0
	var bestRuntime, bestStart, bestEnd float64
	for r := 0; r < s.repeats; r++ {
		for _, n := range s.nodes {
			n.ResetTracesReuse()
		}
		s.scratch = s.noises[r]
		start := s.nodes[0].TraceDuration()
		// Energy is deferred: only the winning repeat's energy is ever
		// reported, so the trace merge runs once per point (below, on
		// the surviving traces) instead of once per repeat.
		res := s.prep.RunNoEnergy(&s.scratch)
		end := s.nodes[0].TraceDuration()
		s.runtimes[r] = res.Runtime
		if r == 0 || res.Runtime < bestRuntime {
			best, bestRuntime = r, res.Runtime
			bestStart, bestEnd = start, end
			// The prepared solver reuses its PhaseDurations map; copy
			// into the sweep-owned map that outlives the loop.
			clear(s.bestPhase)
			for k, v := range res.PhaseDurations {
				s.bestPhase[k] = v
			}
			s.bestRes = res
			s.bestRes.PhaseDurations = s.bestPhase
			s.swapBanks()
		}
	}
	// The banks hold the winner; swap it back so the output nodes carry
	// the best repeat's traces (the scrap storage parks in the banks
	// for the next point), then settle the deferred energy from them.
	s.swapBanks()
	s.bestRes.EnergyJ = s.prep.Energy(bestStart)
	clear(s.windows)
	s.windows["vasp"] = [2]float64{bestStart, bestEnd}
	return RunOutput{
		Nodes:        s.nodes,
		Runtimes:     s.runtimes,
		Best:         best,
		BestResult:   s.bestRes,
		VASPStart:    bestStart,
		VASPEnd:      bestEnd,
		PhaseWindows: s.windows,
	}, nil
}

func (s *Sweep) swapBanks() {
	for i, n := range s.nodes {
		n.SwapTraces(&s.banks[i])
	}
}

// Close releases the arena: nodes return to the pool with traces,
// power limits, and clock limits reset. Idempotent. Outputs of earlier
// Run* calls are invalid afterwards.
func (s *Sweep) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, n := range s.nodes {
		n.ResetGPUClockLimits()
	}
	s.pool.Release(s.nodes)
	activeSweeps.Add(-1)
}
