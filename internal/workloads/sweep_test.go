package workloads

import (
	"testing"

	"vasppower/internal/telemetry"
	"vasppower/internal/timeseries"
)

func sweepTestSpec(t *testing.T, repeats int, entropy float64) RunSpec {
	t.Helper()
	b, ok := ByName("B.hR105_hse")
	if !ok {
		t.Fatal("benchmark not found")
	}
	return RunSpec{
		Bench:          b,
		Nodes:          2,
		Repeats:        repeats,
		Seed:           7,
		OperandEntropy: entropy,
	}
}

func sweepTracesEqual(t *testing.T, label string, a, b *timeseries.Trace) {
	t.Helper()
	sa, sb := a.Segments(), b.Segments()
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d segments vs %d", label, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: segment %d differs: %+v vs %+v", label, i, sa[i], sb[i])
		}
	}
}

// sweepOutputsEqual pins a sweep point to the oracle output: every
// runtime, the selected repeat, the solver summary, the VASP window,
// and every trace of every node, all bit-identical.
func sweepOutputsEqual(t *testing.T, oracle, got RunOutput) {
	t.Helper()
	if len(oracle.Runtimes) != len(got.Runtimes) {
		t.Fatalf("runtimes %v vs oracle %v", got.Runtimes, oracle.Runtimes)
	}
	for i := range oracle.Runtimes {
		if oracle.Runtimes[i] != got.Runtimes[i] {
			t.Fatalf("runtime[%d] %v vs oracle %v", i, got.Runtimes[i], oracle.Runtimes[i])
		}
	}
	if oracle.Best != got.Best {
		t.Fatalf("best %d vs oracle %d", got.Best, oracle.Best)
	}
	if oracle.BestResult.Runtime != got.BestResult.Runtime ||
		oracle.BestResult.EnergyJ != got.BestResult.EnergyJ ||
		oracle.BestResult.Steps != got.BestResult.Steps {
		t.Fatalf("best result %+v vs oracle %+v", got.BestResult, oracle.BestResult)
	}
	for k, v := range oracle.BestResult.PhaseDurations {
		if got.BestResult.PhaseDurations[k] != v {
			t.Fatalf("phase %q: %v vs oracle %v", k, got.BestResult.PhaseDurations[k], v)
		}
	}
	if oracle.VASPStart != got.VASPStart || oracle.VASPEnd != got.VASPEnd {
		t.Fatalf("window [%v,%v] vs oracle [%v,%v]",
			got.VASPStart, got.VASPEnd, oracle.VASPStart, oracle.VASPEnd)
	}
	if oracle.PhaseWindows["vasp"] != got.PhaseWindows["vasp"] {
		t.Fatalf("vasp window %v vs oracle %v", got.PhaseWindows["vasp"], oracle.PhaseWindows["vasp"])
	}
	if len(oracle.Nodes) != len(got.Nodes) {
		t.Fatalf("nodes %d vs oracle %d", len(got.Nodes), len(oracle.Nodes))
	}
	for ni := range oracle.Nodes {
		on, gn := oracle.Nodes[ni], got.Nodes[ni]
		if on.Name != gn.Name {
			t.Fatalf("node %d name %q vs oracle %q", ni, gn.Name, on.Name)
		}
		sweepTracesEqual(t, "cpu", on.CPUTrace(), gn.CPUTrace())
		sweepTracesEqual(t, "mem", on.MemTrace(), gn.MemTrace())
		for gi := 0; gi < on.NumGPUs(); gi++ {
			sweepTracesEqual(t, "gpu", on.GPUTrace(gi), gn.GPUTrace(gi))
			sweepTracesEqual(t, "gpumem", on.GPUMemTrace(gi), gn.GPUMemTrace(gi))
		}
		sweepTracesEqual(t, "total", on.TotalTrace(), gn.TotalTrace())
	}
}

// TestSweepCapPointsMatchRun is the engine's contract: every RunCap
// point of one Sweep is bit-identical to an independent Run with that
// cap, across repeats and entropy, in any point order (including
// revisiting a cap after other points).
func TestSweepCapPointsMatchRun(t *testing.T) {
	for _, tc := range []struct {
		repeats int
		entropy float64
	}{{1, 0}, {3, 0}, {2, 0.7}} {
		spec := sweepTestSpec(t, tc.repeats, tc.entropy)
		sw, err := NewSweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, capW := range []float64{0, 400, 250, 400, 0} {
			oracleSpec := spec
			oracleSpec.GPUPowerLimit = capW
			want, err := Run(oracleSpec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sw.RunCap(capW)
			if err != nil {
				t.Fatal(err)
			}
			sweepOutputsEqual(t, want, got)
		}
		sw.Close()
	}
}

// TestSweepClockPointsMatchRun pins the DVFS axis the same way.
func TestSweepClockPointsMatchRun(t *testing.T) {
	spec := sweepTestSpec(t, 2, 0)
	sw, err := NewSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	for _, mhz := range []float64{0, 1200, 900, 1395} {
		oracleSpec := spec
		oracleSpec.GPUClockLimitMHz = mhz
		want, err := Run(oracleSpec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sw.RunClockMHz(mhz)
		if err != nil {
			t.Fatal(err)
		}
		sweepOutputsEqual(t, want, got)
	}
}

// TestSweepMixedAxesMatchRun interleaves cap and clock points: each
// Run* call must fully clear the other axis's limit.
func TestSweepMixedAxesMatchRun(t *testing.T) {
	spec := sweepTestSpec(t, 1, 0)
	sw, err := NewSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	oracleSpec := spec
	oracleSpec.GPUClockLimitMHz = 1200
	if _, err := sw.RunCap(300); err != nil {
		t.Fatal(err)
	}
	want, err := Run(oracleSpec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sw.RunClockMHz(1200)
	if err != nil {
		t.Fatal(err)
	}
	sweepOutputsEqual(t, want, got)

	oracleSpec = spec
	oracleSpec.GPUPowerLimit = 300
	want, err = Run(oracleSpec)
	if err != nil {
		t.Fatal(err)
	}
	got, err = sw.RunCap(300)
	if err != nil {
		t.Fatal(err)
	}
	sweepOutputsEqual(t, want, got)
}

// TestSweepRejectsUnsupportedSpecs: the engine refuses specs it cannot
// reproduce bit-identically; callers fall back to Run.
func TestSweepRejectsUnsupportedSpecs(t *testing.T) {
	base := sweepTestSpec(t, 1, 0)

	spec := base
	spec.Prelude = true
	if _, err := NewSweep(spec); err == nil {
		t.Fatal("prelude spec accepted")
	}

	spec = base
	spec.GPUPowerLimit = 300
	if _, err := NewSweep(spec); err == nil {
		t.Fatal("pre-capped spec accepted")
	}

	spec = base
	spec.GPUClockLimitMHz = 1200
	if _, err := NewSweep(spec); err == nil {
		t.Fatal("pre-locked spec accepted")
	}

	hub := telemetry.NewHub()
	s, err := telemetry.NewSampler(hub, 2)
	if err != nil {
		t.Fatal(err)
	}
	telemetry.SetDefault(s)
	defer telemetry.SetDefault(nil)
	if _, err := NewSweep(base); err == nil {
		t.Fatal("sweep accepted while telemetry sink active")
	}
}

// BenchmarkCapSweep measures the run engine itself — schedule solve +
// trace recording, the phase the incremental split restructures — on a
// cold 16-point cap sweep at the paper's 5-repeat protocol: a full
// oracle Run per point versus one NewSweep plus 16 RunCap points.
// (The core-level grid in internal/core wraps this with the shared
// profiling pass, which is identical on both paths.)
func BenchmarkCapSweep(b *testing.B) {
	bench, ok := ByName("B.hR105_hse")
	if !ok {
		b.Fatal("benchmark not found")
	}
	spec := RunSpec{Bench: bench, Nodes: 1, Repeats: 5, Seed: 7}
	caps := make([]float64, 16)
	for i := range caps {
		caps[i] = 180 + 14*float64(i) // 180..390 W, all binding on A100
	}

	b.Run("points=16/repeats=5/engine=oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, capW := range caps {
				pt := spec
				pt.GPUPowerLimit = capW
				if _, err := Run(pt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("points=16/repeats=5/engine=incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sw, err := NewSweep(spec)
			if err != nil {
				b.Fatal(err)
			}
			for _, capW := range caps {
				if _, err := sw.RunCap(capW); err != nil {
					b.Fatal(err)
				}
			}
			sw.Close()
		}
	})
}

// TestSweepCloseReleasesArena: the active-sweep gauge returns to zero,
// Close is idempotent, and a closed sweep refuses to run.
func TestSweepCloseReleasesArena(t *testing.T) {
	before := ActiveSweeps()
	sw, err := NewSweep(sweepTestSpec(t, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := ActiveSweeps(); got != before+1 {
		t.Fatalf("active sweeps %d, want %d", got, before+1)
	}
	if _, err := sw.RunCap(300); err != nil {
		t.Fatal(err)
	}
	sw.Close()
	sw.Close()
	if got := ActiveSweeps(); got != before {
		t.Fatalf("active sweeps %d after close, want %d", got, before)
	}
	if _, err := sw.RunCap(300); err == nil {
		t.Fatal("closed sweep ran")
	}

	// The arena's nodes went back to the pool with limits and traces
	// reset: a fresh sweep from the same spec must reproduce the oracle.
	spec := sweepTestSpec(t, 1, 0)
	sw2, err := NewSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	want, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sw2.RunCap(0)
	if err != nil {
		t.Fatal(err)
	}
	sweepOutputsEqual(t, want, got)
}
