// Package vasppower is a simulation-based reproduction of
// "Understanding VASP Power Profiles on NVIDIA A100 GPUs" (Zhao,
// Rrapaj, Austin, Wright; SC 2024): a Perlmutter-like GPU-node power
// simulator, a VASP-like plane-wave DFT workload model, an LDMS/OMNI-
// style telemetry pipeline, nvidia-smi-style power capping, the
// paper's statistical toolkit (KDE, high power mode, FWHM), and a
// power-aware batch scheduler built on the findings.
//
// This package is the public façade: benchmark definitions (Table I),
// the measurement protocol (five repeats, DGEMM/STREAM prelude,
// min-runtime selection), power profiling, cap-response studies, and
// scheduler simulation. The per-figure experiment runners live in
// internal/experiments and are driven by cmd/powerstudy.
//
// Quick start:
//
//	b, _ := vasppower.BenchmarkByName("Si256_hse")
//	profile, err := vasppower.Measure(vasppower.MeasureSpec{Bench: b, Repeats: 5, Seed: 42})
//	// profile.NodeTotal.HighMode.X is the high power mode per node.
//
// Measurements run on the default platform (the paper's Perlmutter
// A100 nodes) unless MeasureSpec.Platform selects another registered
// platform; see Platforms and PlatformByName.
package vasppower

import (
	"vasppower/internal/core"
	"vasppower/internal/dft/method"
	"vasppower/internal/hw/gpu"
	"vasppower/internal/hw/platform"
	"vasppower/internal/predict"
	"vasppower/internal/sched"
	"vasppower/internal/stats"
	"vasppower/internal/timeseries"
	"vasppower/internal/workloads"
)

// Benchmark is a fully-specified VASP workload (Table I entries or
// synthetic silicon supercells).
type Benchmark = workloads.Benchmark

// RunSpec configures one measurement run (§III-B protocol).
type RunSpec = workloads.RunSpec

// Platform is a fully-described hardware platform: GPU and CPU specs,
// node power parameters, GPUs per node, and variability. The zero
// value means "the default platform" wherever a Platform is accepted.
type Platform = platform.Platform

// MeasureSpec configures one Measure or MeasureCapResponse call.
type MeasureSpec = core.MeasureSpec

// RunOutput is a measurement run's traces and selected repeat.
type RunOutput = workloads.RunOutput

// JobProfile is the per-component power characterization of one run.
type JobProfile = core.JobProfile

// Profile characterizes one power signal (distribution + modes).
type Profile = core.Profile

// CapResponse is a benchmark's performance/power response to GPU
// power caps (Figs. 10 and 12).
type CapResponse = core.CapResponse

// CapPoint is one cap measurement within a CapResponse.
type CapPoint = core.CapPoint

// Mode is a local maximum of a power-distribution density estimate;
// the paper's "high power mode" is the Mode at the highest power.
type Mode = stats.Mode

// Series is a sampled power time series.
type Series = timeseries.Series

// Method identifies a VASP computation type (ALGO/LHFCALC/IVDW
// combination).
type Method = method.Kind

// The seven methods of the paper's §IV-D study.
const (
	MethodDFTRMM   = method.DFTRMM   // RMM-DIIS (ALGO=VeryFast)
	MethodDFTBD    = method.DFTBD    // blocked Davidson (ALGO=Normal)
	MethodDFTBDRMM = method.DFTBDRMM // Davidson+RMM (ALGO=Fast)
	MethodDFTCG    = method.DFTCG    // damped CG (ALGO=Damped/All)
	MethodVDW      = method.VDW      // van der Waals corrections
	MethodHSE      = method.HSE      // hybrid functional
	MethodACFDTR   = method.ACFDTR   // RPA correlation energy
)

// DefaultSamplingInterval is the effective telemetry interval (2 s).
const DefaultSamplingInterval = core.DefaultSamplingInterval

// Benchmarks returns the paper's seven-benchmark suite (Table I).
func Benchmarks() []Benchmark { return workloads.TableI() }

// BenchmarkByName looks up a Table I benchmark.
func BenchmarkByName(name string) (Benchmark, bool) { return workloads.ByName(name) }

// BenchmarkNames lists the suite in Table I order.
func BenchmarkNames() []string { return workloads.Names() }

// SiliconBenchmark builds a synthetic n-atom silicon supercell
// benchmark with the given method (the §IV experiment family).
func SiliconBenchmark(nAtoms int, m Method) (Benchmark, error) {
	return workloads.SiliconBenchmark(nAtoms, m)
}

// Run executes a measurement run following the paper's protocol and
// returns the raw traces plus the selected repeat.
func Run(spec RunSpec) (RunOutput, error) { return workloads.Run(spec) }

// Measure runs a benchmark with the paper's protocol and returns its
// power profile at the standard 2 s telemetry interval. Zero spec
// fields take protocol defaults (default platform, 1 node, 1 repeat,
// uncapped, serial); set spec.Workers to fan repeats out over a
// worker pool — the profile is identical for every worker count.
func Measure(spec MeasureSpec) (JobProfile, error) { return core.Measure(spec) }

// MeasureCapResponse measures a benchmark under each GPU power cap
// (spec.CapW is ignored; caps drives the sweep). spec.Workers fans the
// baseline and cap points out concurrently; the response is identical
// for every worker count.
func MeasureCapResponse(spec MeasureSpec, caps []float64) (CapResponse, error) {
	return core.MeasureCapResponse(spec, caps)
}

// Efficiency tables: each platform owns an EfficiencyModel that maps
// pure work descriptors (kernel class, flops, bytes, size axes,
// operand entropy) to execution profiles — achieved compute/bandwidth
// fractions, SM activity, launch latency, and an entropy-dependent
// dynamic-power factor. The table is the platform's calibration
// surface; MeasureSpec.Entropy stamps a run's kernels with an operand
// entropy in [0,1] (0 = the table's reference data, identical power).
type (
	// EfficiencyModel is a platform's per-kernel-class efficiency
	// table.
	EfficiencyModel = gpu.EfficiencyModel
	// KernelClass names one efficiency-table entry (e.g. "gemm",
	// "fft").
	KernelClass = gpu.KernelClass
	// ExecProfile is a resolved kernel execution profile.
	ExecProfile = gpu.ExecProfile
)

// DefaultEfficiency returns a copy of the calibrated perlmutter-a100
// efficiency table (safe to edit and register on a custom Platform).
func DefaultEfficiency() *EfficiencyModel { return gpu.DefaultEfficiency() }

// Platforms lists the registered platform names in sorted order.
func Platforms() []string { return platform.List() }

// PlatformByName looks up a registered platform; the error lists the
// registered names.
func PlatformByName(name string) (Platform, error) { return platform.Get(name) }

// DefaultPlatform returns the paper's platform, perlmutter-a100.
func DefaultPlatform() Platform { return platform.Default() }

// HighPowerMode computes the paper's headline metric for a sample of
// power readings: the mode at the highest power, via a Gaussian KDE.
func HighPowerMode(watts []float64) (Mode, bool) {
	return stats.HighPowerModeOf(watts)
}

// ProfileSeries characterizes a sampled power series (distribution
// summary, modes, high power mode, FWHM).
func ProfileSeries(s Series) Profile { return core.ProfileSeries(s) }

// Scheduler re-exports: the §VI power-aware scheduling simulation.
type (
	// SchedulerPolicy decides per-class GPU caps and power
	// reservations.
	SchedulerPolicy = sched.Policy
	// SchedulerJob is one queued batch job.
	SchedulerJob = sched.Job
	// SchedulerResult summarizes one policy run.
	SchedulerResult = sched.Result
	// SchedulerConfig configures the scheduler simulation.
	SchedulerConfig = sched.SimConfig
	// SchedulerJobStream feeds jobs lazily, in arrival order, to
	// SimulateSchedulerStream — the facility-scale entry point.
	SchedulerJobStream = sched.JobStream
	// SchedulerBudgetPhase is one step of a time-varying facility
	// power envelope (SchedulerConfig.BudgetSchedule).
	SchedulerBudgetPhase = sched.BudgetPhase
)

// Scheduler policies for the ablation.
var (
	// PolicyNoCap runs jobs at default limits, reserving the default
	// platform's node TDP.
	PolicyNoCap SchedulerPolicy = sched.NoCap{NodeTDP: platform.Default().Node.TDP}
	// PolicyUniform200 caps every GPU at 50% TDP.
	PolicyUniform200 SchedulerPolicy = sched.UniformCap{Watts: 200, HostWatts: 350}
	// PolicyProfileAware applies the paper's per-class caps.
	PolicyProfileAware SchedulerPolicy = sched.DefaultProfileAware()
)

// NewSchedulerCatalog creates a profile catalog for scheduler
// simulations on the default platform (profiles are measured once and
// cached).
func NewSchedulerCatalog(seed uint64) *sched.Catalog { return sched.NewCatalog(seed) }

// NewSchedulerCatalogOn is NewSchedulerCatalog measuring on the given
// platform (zero = default).
func NewSchedulerCatalogOn(p Platform, seed uint64) *sched.Catalog {
	return sched.NewCatalogOn(p, seed)
}

// SimulateScheduler runs a job mix through the power-aware scheduler.
func SimulateScheduler(cfg SchedulerConfig, jobs []SchedulerJob) (SchedulerResult, error) {
	return sched.Simulate(cfg, jobs)
}

// SimulateSchedulerStream runs a lazily generated job stream through
// the power-aware scheduler — the facility-scale entry point (100k-job
// mixes without materializing the slice).
func SimulateSchedulerStream(cfg SchedulerConfig, src SchedulerJobStream) (SchedulerResult, error) {
	return sched.SimulateStream(cfg, src)
}

// SyntheticJobMix builds a reproducible VASP job mix for scheduler
// studies.
func SyntheticJobMix(n int, meanInterArrival float64, seed uint64) []SchedulerJob {
	return sched.SyntheticJobMix(n, meanInterArrival, seed)
}

// SyntheticJobStream is SyntheticJobMix as a lazy stream: the same
// jobs in the same order, generated one at a time.
func SyntheticJobStream(n int, meanInterArrival float64, seed uint64) SchedulerJobStream {
	return sched.SyntheticJobStream(n, meanInterArrival, seed)
}

// Power prediction (§VI-C): estimate a job's high power mode from
// scheduler-visible inputs before it runs.
type (
	// PowerPredictor maps INCAR-visible job features to node power.
	PowerPredictor = predict.Model
	// PredictorSample is one (job, measured mode) training point.
	PredictorSample = predict.Sample
)

// FitPowerPredictor trains per-class ridge models on measured
// profiles (lambda is the ridge penalty; 1e-3 is a good default).
func FitPowerPredictor(samples []PredictorSample, lambda float64) (*PowerPredictor, error) {
	return predict.Fit(samples, lambda)
}

// PredictorFeatures exposes the feature extraction used by the
// predictor (workload class aside): log NPLWV, log bands/GPU,
// log electrons, log nodes, log k-points.
func PredictorFeatures(b Benchmark, nodes int) ([]float64, error) {
	return predict.Features(b, nodes)
}

// Energy/performance trade-off metrics (§VII): energy-delay product
// and E·T² for weighing a cap's savings against its slowdown.
type Tradeoff = core.Tradeoff

// TradeoffOf extracts the (energy, runtime) point of a profile.
func TradeoffOf(jp JobProfile) Tradeoff { return core.TradeoffOf(jp) }

// BestCapByEDP returns the index of the energy-delay-optimal point in
// a cap response.
func BestCapByEDP(cr CapResponse) (int, error) { return core.BestCapByEDP(cr) }
