package vasppower_test

import (
	"math"
	"testing"

	"vasppower"
)

func TestBenchmarksSuite(t *testing.T) {
	suite := vasppower.Benchmarks()
	if len(suite) != 7 {
		t.Fatalf("suite = %d benchmarks, want 7", len(suite))
	}
	names := vasppower.BenchmarkNames()
	if names[0] != "Si256_hse" || names[6] != "Si128_acfdtr" {
		t.Fatalf("names = %v", names)
	}
	if _, ok := vasppower.BenchmarkByName("PdO4"); !ok {
		t.Fatal("PdO4 missing")
	}
}

func TestMeasurePublicAPI(t *testing.T) {
	b, _ := vasppower.BenchmarkByName("B.hR105_hse")
	jp, err := vasppower.Measure(vasppower.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, CapW: 0, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !jp.NodeTotal.HasMode {
		t.Fatal("no node mode")
	}
	if jp.NodeTotal.HighMode.X < 700 || jp.NodeTotal.HighMode.X > 2350 {
		t.Fatalf("implausible node mode %v", jp.NodeTotal.HighMode.X)
	}
}

func TestMeasureCapResponsePublicAPI(t *testing.T) {
	b, _ := vasppower.BenchmarkByName("GaAsBi-64")
	cr, err := vasppower.MeasureCapResponse(vasppower.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, Seed: 42}, []float64{400, 100})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := cr.SlowdownAt(100)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's finding: GaAsBi-64 loses <5% even at 100 W.
	if slow > 0.05 {
		t.Fatalf("GaAsBi-64 at 100 W slowed %.1f%%", slow*100)
	}
}

func TestHighPowerModePublicAPI(t *testing.T) {
	var watts []float64
	for i := 0; i < 2000; i++ {
		if i%3 == 0 {
			watts = append(watts, 1800+float64(i%7))
		} else {
			watts = append(watts, 900+float64(i%11))
		}
	}
	mode, ok := vasppower.HighPowerMode(watts)
	if !ok {
		t.Fatal("no mode")
	}
	if math.Abs(mode.X-1803) > 25 {
		t.Fatalf("high power mode at %v, want ≈ 1803", mode.X)
	}
}

func TestSiliconBenchmarkPublicAPI(t *testing.T) {
	b, err := vasppower.SiliconBenchmark(64, vasppower.MethodHSE)
	if err != nil {
		t.Fatal(err)
	}
	if b.Structure.NumIons != 64 {
		t.Fatalf("ions = %d", b.Structure.NumIons)
	}
	if _, err := vasppower.SiliconBenchmark(3, vasppower.MethodDFTRMM); err == nil {
		t.Fatal("invalid size accepted")
	}
}

func TestSchedulerPublicAPI(t *testing.T) {
	jobs := vasppower.SyntheticJobMix(6, 60, 5)
	res, err := vasppower.SimulateScheduler(vasppower.SchedulerConfig{
		ClusterNodes: 4,
		BudgetW:      4 * 1100,
		IdleNodeW:    460,
		Policy:       vasppower.PolicyProfileAware,
		Catalog:      vasppower.NewSchedulerCatalog(5),
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed %d of %d", res.Completed, len(jobs))
	}
	if res.PeakPowerW > 4*1100+1e-6 {
		t.Fatal("budget violated")
	}
}

func TestRunProtocolPublicAPI(t *testing.T) {
	b, _ := vasppower.BenchmarkByName("B.hR105_hse")
	out, err := vasppower.Run(vasppower.RunSpec{Bench: b, Nodes: 1, Repeats: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Nodes[0].TotalTrace().Sample(vasppower.DefaultSamplingInterval)
	p := vasppower.ProfileSeries(s.Slice(out.VASPStart, out.VASPEnd))
	if !p.HasMode {
		t.Fatal("profiled series has no mode")
	}
}

func TestPowerPredictorPublicAPI(t *testing.T) {
	// Train a tiny predictor on measured silicon profiles and check it
	// interpolates within the family.
	var samples []vasppower.PredictorSample
	for _, atoms := range []int{64, 128, 256, 512, 1024, 2048, 1500, 700} {
		b, err := vasppower.SiliconBenchmark(atoms, vasppower.MethodDFTRMM)
		if err != nil {
			t.Fatal(err)
		}
		jp, err := vasppower.Measure(vasppower.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, CapW: 0, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if !jp.NodeTotal.HasMode {
			t.Fatal("no mode")
		}
		samples = append(samples, vasppower.PredictorSample{
			Bench: b, Nodes: 1, NodeMode: jp.NodeTotal.HighMode.X,
		})
	}
	model, err := vasppower.FitPowerPredictor(samples, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := vasppower.SiliconBenchmark(384, vasppower.MethodDFTRMM)
	pred, err := model.Predict(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	jp, _ := vasppower.Measure(vasppower.MeasureSpec{Bench: b, Nodes: 1, Repeats: 1, CapW: 0, Seed: 42})
	measured := jp.NodeTotal.HighMode.X
	if pred < measured*0.8 || pred > measured*1.2 {
		t.Fatalf("interpolated prediction %v vs measured %v", pred, measured)
	}
	f, err := vasppower.PredictorFeatures(b, 1)
	if err != nil || len(f) == 0 {
		t.Fatalf("features: %v %v", f, err)
	}
}
